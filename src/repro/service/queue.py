"""Persistent priority job queue with a JSONL journal.

Every accepted sweep becomes a :class:`Job` whose full lifecycle is
journaled through the same JSONL machinery as the runner's run log
(:class:`repro.obs.log.JsonlSink`, append mode): ``job-submitted``
carries the complete validated request payload, ``job-point-completed``
records each finished point by its content-hash key, and a terminal
``job-completed`` / ``job-failed`` / ``job-cancelled`` closes the job.

Because the journal is the source of truth, a restarted service
replays it (:meth:`JobQueue.recover`) and resumes exactly where it
stopped: jobs that never reached a terminal state re-enter the queue
at their original priority and submission order, and their already
completed points are *not* re-simulated — point results live in the
content-addressed shared store, which survives restarts on disk.

Dispatch order is strict priority (lower number first; the range is
validated by the schema), FIFO within a priority level.  Failures
reuse the runner's :class:`~repro.runner.FailureRecord` taxonomy
verbatim, so a service journal and a batch run log read the same way.
"""

from __future__ import annotations

import hashlib
import heapq
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Set, Union

from repro.obs.log import JsonlSink
from repro.runner import SimPoint
from repro.service.schema import SchemaError, SweepRequest, parse_sweep_request

__all__ = ["Job", "JobQueue", "JobState"]


class JobState:
    """Lifecycle states; terminal states are never left."""

    QUEUED = "queued"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"
    CANCELLED = "cancelled"

    TERMINAL = (COMPLETED, FAILED, CANCELLED)


@dataclass
class Job:
    """One accepted sweep and its progress."""

    id: str
    seq: int
    priority: int
    request: SweepRequest
    payload: Dict[str, object]
    points: List[SimPoint]
    #: cache key per point, aligned with ``points``.
    keys: List[str]
    state: str = JobState.QUEUED
    done_keys: Set[str] = field(default_factory=set)
    #: :class:`repro.runner.FailureRecord` dicts, transient and fatal.
    failures: List[Dict[str, object]] = field(default_factory=list)
    error: Optional[str] = None

    @property
    def total_points(self) -> int:
        return len(self.keys)

    @property
    def completed_points(self) -> int:
        return sum(1 for key in self.keys if key in self.done_keys)

    def summary(self) -> Dict[str, object]:
        """Poll-response form (without per-point statistics)."""
        out: Dict[str, object] = {
            "id": self.id,
            "state": self.state,
            "priority": self.priority,
            "points": self.total_points,
            "completed": self.completed_points,
            "benchmarks": list(self.request.benchmarks),
            "memory_refs": self.request.memory_refs,
            "seed": self.request.seed,
        }
        if self.request.tags:
            out["tags"] = dict(self.request.tags)
        if self.failures:
            out["failures"] = list(self.failures)
        if self.error:
            out["error"] = self.error
        return out


def _job_id(seq: int, payload: Dict[str, object]) -> str:
    """Stable, human-sortable id: submission order + request fingerprint."""
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")
    ).hexdigest()[:8]
    return f"job-{seq:06d}-{digest}"


class JobQueue:
    """Priority queue of jobs, journaled to ``journal_path``.

    All methods are synchronous and must be called from one thread (the
    service's event loop); persistence is write-through — every state
    transition is journaled before it is observable.
    """

    def __init__(self, journal_path: Union[str, Path]) -> None:
        self.journal_path = Path(journal_path)
        self.jobs: Dict[str, Job] = {}
        self._heap: List = []  # (priority, seq, job id)
        self._seq = 0
        self._recovered: List[str] = []
        if self.journal_path.exists():
            self._replay()
        self._journal = JsonlSink(self.journal_path, mode="a")

    # -- recovery ----------------------------------------------------------

    def _replay(self) -> None:
        """Rebuild queue state from the journal; tolerate a torn tail.

        A crash mid-write can leave a truncated final line; like the
        result cache, an unreadable record is skipped rather than
        poisoning recovery.
        """
        for line in self.journal_path.read_text(encoding="utf-8").splitlines():
            try:
                record = json.loads(line)
            except ValueError:
                continue
            event = record.get("event")
            if event == "job-submitted":
                try:
                    request = parse_sweep_request(record["request"])
                except (SchemaError, KeyError):
                    continue  # journal from an incompatible schema version
                seq = int(record.get("seq", self._seq))
                self._seq = max(self._seq, seq + 1)
                job = self._make_job(
                    request, dict(record["request"]), seq, record.get("id")
                )
                self.jobs[job.id] = job
            else:
                job = self.jobs.get(record.get("id", ""))
                if job is None:
                    continue
                if event == "job-point-completed":
                    job.done_keys.add(record.get("key", ""))
                elif event == "job-started":
                    job.state = JobState.RUNNING
                elif event == "job-completed":
                    job.state = JobState.COMPLETED
                elif event == "job-failed":
                    job.state = JobState.FAILED
                    job.error = record.get("message")
                    job.failures = list(record.get("failures", []))
                elif event == "job-cancelled":
                    job.state = JobState.CANCELLED
        # anything non-terminal goes back on the queue: a RUNNING job at
        # crash time restarts (already-done points are served from the
        # shared store, so only the remainder re-simulates).
        for job in sorted(self.jobs.values(), key=lambda j: j.seq):
            if job.state not in JobState.TERMINAL:
                job.state = JobState.QUEUED
                heapq.heappush(self._heap, (job.priority, job.seq, job.id))
                self._recovered.append(job.id)

    @property
    def recovered_job_ids(self) -> List[str]:
        """Jobs re-queued by journal replay (empty on a fresh start)."""
        return list(self._recovered)

    def _make_job(
        self,
        request: SweepRequest,
        payload: Dict[str, object],
        seq: int,
        job_id: Optional[str] = None,
    ) -> Job:
        points = request.points()
        return Job(
            id=job_id or _job_id(seq, payload),
            seq=seq,
            priority=request.priority,
            request=request,
            payload=payload,
            points=points,
            keys=[point.cache_key() for point in points],
        )

    # -- submission and dispatch -------------------------------------------

    def submit(self, request: SweepRequest) -> Job:
        """Accept a validated request; journal it; queue it."""
        payload = request.to_dict()
        job = self._make_job(request, payload, self._seq)
        self._seq += 1
        self.jobs[job.id] = job
        self._journal.event(
            "job-submitted", id=job.id, seq=job.seq, priority=job.priority,
            request=payload,
        )
        heapq.heappush(self._heap, (job.priority, job.seq, job.id))
        return job

    def pop(self) -> Optional[Job]:
        """Highest-priority queued job, marked running; None when idle."""
        while self._heap:
            _, _, job_id = heapq.heappop(self._heap)
            job = self.jobs[job_id]
            if job.state != JobState.QUEUED:
                continue  # cancelled while queued
            job.state = JobState.RUNNING
            self._journal.event("job-started", id=job.id)
            return job
        return None

    def pending(self) -> int:
        return sum(1 for job in self.jobs.values() if job.state == JobState.QUEUED)

    # -- progress ----------------------------------------------------------

    def point_completed(self, job: Job, key: str) -> None:
        if key not in job.done_keys:
            job.done_keys.add(key)
            self._journal.event("job-point-completed", id=job.id, key=key)

    def complete(self, job: Job) -> None:
        job.state = JobState.COMPLETED
        self._journal.event("job-completed", id=job.id)

    def fail(self, job: Job, message: str, failures: List[Dict[str, object]]) -> None:
        job.state = JobState.FAILED
        job.error = message
        job.failures = failures
        self._journal.event(
            "job-failed", id=job.id, message=message, failures=failures
        )

    def cancel(self, job_id: str) -> bool:
        """Cancel a *queued* job; running/terminal jobs are left alone."""
        job = self.jobs.get(job_id)
        if job is None or job.state != JobState.QUEUED:
            return False
        job.state = JobState.CANCELLED
        self._journal.event("job-cancelled", id=job.id)
        return True

    def close(self) -> None:
        self._journal.close()
