"""Persistent priority job queue with a JSONL journal.

Every accepted sweep becomes a :class:`Job` whose full lifecycle is
journaled through the same JSONL machinery as the runner's run log
(:class:`repro.obs.log.JsonlSink`, append mode): ``job-submitted``
carries the complete validated request payload, ``job-point-completed``
records each finished point by its content-hash key, and a terminal
``job-completed`` / ``job-failed`` / ``job-cancelled`` closes the job.

Because the journal is the source of truth, a restarted service
replays it (:meth:`JobQueue.recover`) and resumes exactly where it
stopped: jobs that never reached a terminal state re-enter the queue
at their original priority and submission order, and their already
completed points are *not* re-simulated — point results live in the
content-addressed shared store, which survives restarts on disk.

Dispatch order is strict priority (lower number first; the range is
validated by the schema), FIFO within a priority level.  Failures
reuse the runner's :class:`~repro.runner.FailureRecord` taxonomy
verbatim, so a service journal and a batch run log read the same way.

Two durability refinements keep a week-long service healthy:

* **journal-write degradation** — a failing journal write (disk full,
  volume gone) never takes a request down: the write is dropped, the
  error is counted (``journal_write_errors``) and logged once per
  burst, and the queue keeps serving from memory.  Availability wins
  over durability for the single record; the next compaction or clean
  write restores a consistent on-disk state.
* **snapshot compaction** — once the journal crosses a size threshold
  (:meth:`maybe_compact`), it is rewritten as one ``job-snapshot``
  record per job (terminal jobs collapse from their whole lifecycle to
  a single line) via write-temp-then-atomic-rename, so replay cost is
  bounded by the job count, not the service's age.  Replay accepts
  snapshots and incremental records interchangeably, and stays tolerant
  of a torn tail in either form.
"""

from __future__ import annotations

import hashlib
import heapq
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Set, Union

from repro.obs.log import JsonlSink, get_logger
from repro.runner import SimPoint
from repro.runner import faults
from repro.service.schema import SchemaError, SweepRequest, parse_sweep_request

__all__ = ["Job", "JobQueue", "JobState"]

_log = get_logger("repro.service")


class JobState:
    """Lifecycle states; terminal states are never left."""

    QUEUED = "queued"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"
    CANCELLED = "cancelled"

    TERMINAL = (COMPLETED, FAILED, CANCELLED)


@dataclass
class Job:
    """One accepted sweep and its progress."""

    id: str
    seq: int
    priority: int
    request: SweepRequest
    payload: Dict[str, object]
    points: List[SimPoint]
    #: cache key per point, aligned with ``points``.
    keys: List[str]
    state: str = JobState.QUEUED
    done_keys: Set[str] = field(default_factory=set)
    #: :class:`repro.runner.FailureRecord` dicts, transient and fatal.
    failures: List[Dict[str, object]] = field(default_factory=list)
    error: Optional[str] = None
    #: serialized request size, charged against the admission byte budget.
    payload_bytes: int = 0
    #: correlation id: the client's ``trace_id`` or the job id.  Stable
    #: across journal replay (both inputs are journaled).
    trace_id: str = ""
    #: monotonic submission instant for the queue-wait metric; runtime
    #: only (never journaled — replayed jobs restart the clock).
    submitted_monotonic: float = 0.0

    @property
    def remaining_points(self) -> int:
        """Points not yet resolved — the job's admission-control weight."""
        return self.total_points - self.completed_points

    @property
    def total_points(self) -> int:
        return len(self.keys)

    @property
    def completed_points(self) -> int:
        return sum(1 for key in self.keys if key in self.done_keys)

    def summary(self) -> Dict[str, object]:
        """Poll-response form (without per-point statistics)."""
        out: Dict[str, object] = {
            "id": self.id,
            "state": self.state,
            "priority": self.priority,
            "points": self.total_points,
            "completed": self.completed_points,
            "benchmarks": list(self.request.benchmarks),
            "memory_refs": self.request.memory_refs,
            "seed": self.request.seed,
            "trace_id": self.trace_id,
        }
        if self.request.tags:
            out["tags"] = dict(self.request.tags)
        if self.failures:
            out["failures"] = list(self.failures)
        if self.error:
            out["error"] = self.error
        return out


def _job_id(seq: int, payload: Dict[str, object]) -> str:
    """Stable, human-sortable id: submission order + request fingerprint."""
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")
    ).hexdigest()[:8]
    return f"job-{seq:06d}-{digest}"


class JobQueue:
    """Priority queue of jobs, journaled to ``journal_path``.

    All methods are synchronous and must be called from one thread (the
    service's event loop); persistence is write-through — every state
    transition is journaled before it is observable.
    """

    def __init__(self, journal_path: Union[str, Path]) -> None:
        self.journal_path = Path(journal_path)
        self.jobs: Dict[str, Job] = {}
        self._heap: List = []  # (priority, seq, job id)
        self._seq = 0
        self._recovered: List[str] = []
        self.journal_write_errors = 0
        self.compactions = 0
        self._event_counts: Dict[str, int] = {}
        if self.journal_path.exists():
            self._replay()
        self._journal = JsonlSink(self.journal_path, mode="a")

    def _event(self, event: str, **fields: object) -> None:
        """Write one journal record, surviving a failing write.

        The deterministic chaos harness can schedule an ``OSError``
        here (``journal-io`` fault, keyed by event name + occurrence);
        real disk errors take the same path: count, log, keep serving.
        """
        occurrence = self._event_counts.get(event, 0)
        self._event_counts[event] = occurrence + 1
        try:
            if faults.service_fault("journal-io", event, occurrence) is not None:
                raise OSError(f"injected journal-io fault on {event!r}")
            self._journal.event(event, **fields)
        except OSError as exc:
            self.journal_write_errors += 1
            _log.warning(
                f"[service] journal write failed ({event}): {exc} — "
                f"continuing without this record"
            )

    def journal_bytes(self) -> int:
        """Current on-disk journal size (0 when unreadable/absent)."""
        try:
            return self.journal_path.stat().st_size
        except OSError:
            return 0

    # -- recovery ----------------------------------------------------------

    def _replay(self) -> None:
        """Rebuild queue state from the journal; tolerate a torn tail.

        A crash mid-write can leave a truncated final line; like the
        result cache, an unreadable record is skipped rather than
        poisoning recovery.
        """
        for line in self.journal_path.read_text(encoding="utf-8").splitlines():
            try:
                record = json.loads(line)
            except ValueError:
                continue
            event = record.get("event")
            if event in ("job-submitted", "job-snapshot"):
                try:
                    request = parse_sweep_request(record["request"])
                except (SchemaError, KeyError):
                    continue  # journal from an incompatible schema version
                seq = int(record.get("seq", self._seq))
                self._seq = max(self._seq, seq + 1)
                job = self._make_job(
                    request, dict(record["request"]), seq, record.get("id")
                )
                self.jobs[job.id] = job
                if event == "job-snapshot":
                    # one compacted record carries the whole lifecycle
                    state = record.get("state", JobState.QUEUED)
                    job.state = (
                        state if state in JobState.TERMINAL else JobState.QUEUED
                    )
                    job.done_keys = {
                        key for key in record.get("done_keys", ())
                        if isinstance(key, str)
                    }
                    job.error = record.get("error")
                    job.failures = list(record.get("failures", []))
            else:
                job = self.jobs.get(record.get("id", ""))
                if job is None:
                    continue
                if event == "job-point-completed":
                    job.done_keys.add(record.get("key", ""))
                elif event == "job-started":
                    job.state = JobState.RUNNING
                elif event == "job-requeued":
                    job.state = JobState.QUEUED
                elif event == "job-completed":
                    job.state = JobState.COMPLETED
                elif event == "job-failed":
                    job.state = JobState.FAILED
                    job.error = record.get("message")
                    job.failures = list(record.get("failures", []))
                elif event == "job-cancelled":
                    job.state = JobState.CANCELLED
        # anything non-terminal goes back on the queue: a RUNNING job at
        # crash time restarts (already-done points are served from the
        # shared store, so only the remainder re-simulates).
        for job in sorted(self.jobs.values(), key=lambda j: j.seq):
            if job.state not in JobState.TERMINAL:
                job.state = JobState.QUEUED
                heapq.heappush(self._heap, (job.priority, job.seq, job.id))
                self._recovered.append(job.id)

    @property
    def recovered_job_ids(self) -> List[str]:
        """Jobs re-queued by journal replay (empty on a fresh start)."""
        return list(self._recovered)

    def _make_job(
        self,
        request: SweepRequest,
        payload: Dict[str, object],
        seq: int,
        job_id: Optional[str] = None,
    ) -> Job:
        points = request.points()
        resolved_id = job_id or _job_id(seq, payload)
        return Job(
            id=resolved_id,
            seq=seq,
            priority=request.priority,
            request=request,
            payload=payload,
            points=points,
            keys=[point.cache_key() for point in points],
            payload_bytes=len(
                json.dumps(payload, sort_keys=True, separators=(",", ":"))
            ),
            trace_id=request.trace_id or resolved_id,
            submitted_monotonic=time.monotonic(),
        )

    # -- submission and dispatch -------------------------------------------

    def submit(self, request: SweepRequest) -> Job:
        """Accept a validated request; journal it; queue it."""
        payload = request.to_dict()
        job = self._make_job(request, payload, self._seq)
        self._seq += 1
        self.jobs[job.id] = job
        self._event(
            "job-submitted", id=job.id, seq=job.seq, priority=job.priority,
            trace_id=job.trace_id, request=payload,
        )
        heapq.heappush(self._heap, (job.priority, job.seq, job.id))
        return job

    def pop(self) -> Optional[Job]:
        """Highest-priority queued job, marked running; None when idle."""
        while self._heap:
            _, _, job_id = heapq.heappop(self._heap)
            job = self.jobs[job_id]
            if job.state != JobState.QUEUED:
                continue  # cancelled while queued
            job.state = JobState.RUNNING
            self._event("job-started", id=job.id)
            return job
        return None

    def pending(self) -> int:
        return sum(1 for job in self.jobs.values() if job.state == JobState.QUEUED)

    def backlog_points(self) -> int:
        """Unresolved points across every non-terminal job."""
        return sum(
            job.remaining_points
            for job in self.jobs.values()
            if job.state not in JobState.TERMINAL
        )

    def inflight_bytes(self) -> int:
        """Serialized request bytes held by non-terminal jobs."""
        return sum(
            job.payload_bytes
            for job in self.jobs.values()
            if job.state not in JobState.TERMINAL
        )

    # -- progress ----------------------------------------------------------

    def point_completed(self, job: Job, key: str) -> None:
        if key not in job.done_keys:
            job.done_keys.add(key)
            self._event("job-point-completed", id=job.id, key=key)

    def complete(self, job: Job) -> None:
        job.state = JobState.COMPLETED
        self._event("job-completed", id=job.id)

    def fail(self, job: Job, message: str, failures: List[Dict[str, object]]) -> None:
        job.state = JobState.FAILED
        job.error = message
        job.failures = failures
        self._event(
            "job-failed", id=job.id, message=message, failures=failures
        )

    def cancel(self, job_id: str) -> bool:
        """Cancel a *queued* job; running/terminal jobs are left alone."""
        job = self.jobs.get(job_id)
        if job is None or job.state != JobState.QUEUED:
            return False
        job.state = JobState.CANCELLED
        self._event("job-cancelled", id=job.id)
        return True

    def cancel_running(self, job: Job) -> None:
        """Journal a cooperative cancellation of a *running* job.

        The engine owns the hard part (cancelling the job's outstanding
        point tasks); the queue's contract is that the terminal
        transition hits the journal before it is observable.
        """
        job.state = JobState.CANCELLED
        self._event("job-cancelled", id=job.id, was_running=True)

    def requeue(self, job: Job) -> None:
        """Return an interrupted running job to the queue (drain path).

        Keeps its original priority and submission order; completed
        points stay in ``done_keys`` so only the remainder re-runs.
        """
        job.state = JobState.QUEUED
        heapq.heappush(self._heap, (job.priority, job.seq, job.id))
        self._event("job-requeued", id=job.id, completed=job.completed_points)

    def shutdown_marker(self, **fields: object) -> None:
        """Journal a clean ``service-shutdown`` marker (drain path)."""
        self._event("service-shutdown", **fields)

    # -- compaction --------------------------------------------------------

    def _snapshot_record(self, job: Job) -> Dict[str, object]:
        record: Dict[str, object] = {
            "event": "job-snapshot",
            "id": job.id,
            "seq": job.seq,
            "priority": job.priority,
            "state": job.state,
            "request": job.payload,
            "done_keys": sorted(job.done_keys),
        }
        if job.error:
            record["error"] = job.error
        if job.failures:
            record["failures"] = list(job.failures)
        return record

    def compact(self) -> None:
        """Rewrite the journal as one ``job-snapshot`` line per job.

        Terminal jobs collapse from their whole submitted/started/
        point-completed/terminal history to a single record.  The
        rewrite goes to a temp file that is fsynced and atomically
        renamed over the journal, so a crash at any instant leaves
        either the old journal or the new one — never a mix — and the
        replay path's torn-tail tolerance covers a torn snapshot line
        exactly as it covers a torn incremental one.
        """
        tmp_path = self.journal_path.with_name(self.journal_path.name + ".compact")
        try:
            with open(tmp_path, "w", encoding="utf-8") as handle:
                for job in sorted(self.jobs.values(), key=lambda j: j.seq):
                    handle.write(
                        json.dumps(self._snapshot_record(job), sort_keys=True)
                        + "\n"
                    )
                handle.flush()
                os.fsync(handle.fileno())
            self._journal.close()
            os.replace(tmp_path, self.journal_path)
            self.compactions += 1
        except OSError as exc:
            self.journal_write_errors += 1
            _log.warning(f"[service] journal compaction failed: {exc}")
            try:
                tmp_path.unlink()
            except OSError:
                pass
        finally:
            # reopen even after a failed rename: the old journal is intact
            self._journal = JsonlSink(self.journal_path, mode="a")

    def maybe_compact(self, max_bytes: int) -> bool:
        """Compact when the journal exceeds ``max_bytes`` (0 disables)."""
        if not max_bytes or self.journal_bytes() <= max_bytes:
            return False
        before = self.journal_bytes()
        self.compact()
        _log.info(
            f"[service] journal compacted: {before} -> "
            f"{self.journal_bytes()} bytes ({len(self.jobs)} job snapshot(s))"
        )
        return True

    def close(self) -> None:
        self._journal.close()
