"""Blocking HTTP client for the simulation service.

Thin ``urllib`` wrapper matching the server's routes one-for-one, for
scripts, tests, and the ``repro-serve`` CLI.  Validation failures come
back as :class:`ServiceError` carrying the server's field-addressed
error list, so a misspelled config override reads the same whether the
request was made in-process or over the wire.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Dict, Iterator, List, Optional

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """A non-2xx response from the service."""

    def __init__(self, status: int, payload: Dict[str, object]) -> None:
        self.status = status
        self.payload = payload
        detail = payload.get("error", "error")
        errors = payload.get("errors")
        if isinstance(errors, list) and errors:
            lines = "; ".join(
                f"{e.get('field')}: {e.get('message')}" for e in errors
            )
            detail = f"{detail} — {lines}"
        super().__init__(f"HTTP {status}: {detail}")


class ServiceClient:
    """Talk to one service instance at ``base_url``."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, object]] = None,
    ) -> Dict[str, object]:
        data = json.dumps(body).encode("utf-8") if body is not None else None
        request = urllib.request.Request(
            f"{self.base_url}{path}",
            data=data,
            method=method,
            headers={"Content-Type": "application/json"} if data else {},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                return json.loads(resp.read())
        except urllib.error.HTTPError as exc:
            try:
                payload = json.loads(exc.read())
            except ValueError:
                payload = {"error": exc.reason}
            raise ServiceError(exc.code, payload) from exc

    # -- routes ------------------------------------------------------------

    def healthy(self) -> bool:
        try:
            return bool(self._request("GET", "/healthz").get("ok"))
        except (ServiceError, OSError):
            return False

    def contract(self) -> Dict[str, object]:
        return self._request("GET", "/v1/contract")

    def stats(self) -> Dict[str, object]:
        return self._request("GET", "/v1/stats")

    def submit(self, payload: Dict[str, object]) -> Dict[str, object]:
        """POST a sweep; returns the job summary (raises on 400)."""
        return self._request("POST", "/v1/sweeps", payload)

    def jobs(self) -> List[Dict[str, object]]:
        return list(self._request("GET", "/v1/jobs")["jobs"])

    def job(self, job_id: str) -> Dict[str, object]:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def cancel(self, job_id: str) -> Dict[str, object]:
        return self._request("DELETE", f"/v1/jobs/{job_id}")

    def wait(
        self, job_id: str, timeout: float = 300.0, poll: float = 0.2
    ) -> Dict[str, object]:
        """Poll until the job is terminal; returns the final status."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.job(job_id)
            if status["state"] in ("completed", "failed", "cancelled"):
                return status
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {status['state']} "
                    f"({status['completed']}/{status['points']} points) "
                    f"after {timeout:.0f}s"
                )
            time.sleep(poll)

    def stream(self, job_id: str) -> Iterator[Dict[str, object]]:
        """Yield Server-Sent progress events until the job is terminal."""
        request = urllib.request.Request(
            f"{self.base_url}/v1/jobs/{job_id}/stream"
        )
        with urllib.request.urlopen(request, timeout=self.timeout) as resp:
            for raw in resp:
                line = raw.decode("utf-8").strip()
                if line.startswith("data: "):
                    yield json.loads(line[len("data: "):])
