"""Blocking HTTP client for the simulation service.

Thin ``urllib`` wrapper matching the server's routes one-for-one, for
scripts, tests, and the ``repro-serve`` CLI.  Validation failures come
back as :class:`ServiceError` carrying the server's field-addressed
error list, so a misspelled config override reads the same whether the
request was made in-process or over the wire.

Transport failures (connection refused, reset mid-response, DNS) are
normalized to :class:`ServiceError` too — callers handle one exception
type for "the service said no" and "the service wasn't there".

Backpressure is handled where the paper-sized sweeps are submitted:
:meth:`ServiceClient.submit` retries a ``429``/``503`` a bounded number
of times, sleeping the server's ``Retry-After`` hint jittered by the
runner's deterministic keyed backoff
(:func:`repro.runner.runner.backoff_delay`, keyed by the payload
fingerprint) — a thousand clients hitting one saturated service spread
out instead of thundering back in lockstep.
"""

from __future__ import annotations

import hashlib
import http.client
import json
import time
import urllib.error
import urllib.request
from typing import Dict, Iterator, List, Optional

from repro.runner.runner import backoff_delay

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """A non-2xx response — or no response at all — from the service.

    ``status`` is the HTTP status, or 0 for transport-level failures;
    ``retry_after`` carries the server's ``Retry-After`` hint (seconds)
    when one was sent.
    """

    def __init__(
        self,
        status: int,
        payload: Dict[str, object],
        retry_after: Optional[float] = None,
    ) -> None:
        self.status = status
        self.payload = payload
        self.retry_after = retry_after
        detail = payload.get("error", "error")
        message = payload.get("message")
        if isinstance(message, str) and message:
            detail = f"{detail} — {message}"
        errors = payload.get("errors")
        if isinstance(errors, list) and errors:
            lines = "; ".join(
                f"{e.get('field')}: {e.get('message')}" for e in errors
            )
            detail = f"{detail} — {lines}"
        prefix = f"HTTP {status}" if status else "connection failed"
        super().__init__(f"{prefix}: {detail}")


def _retry_after_seconds(exc: urllib.error.HTTPError) -> Optional[float]:
    value = exc.headers.get("Retry-After") if exc.headers else None
    try:
        return float(value) if value is not None else None
    except ValueError:
        return None


class ServiceClient:
    """Talk to one service instance at ``base_url``."""

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        max_submit_retries: int = 4,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        #: bounded retries for over-capacity (429/503) submissions.
        self.max_submit_retries = max_submit_retries

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, object]] = None,
    ) -> Dict[str, object]:
        data = json.dumps(body).encode("utf-8") if body is not None else None
        request = urllib.request.Request(
            f"{self.base_url}{path}",
            data=data,
            method=method,
            headers={"Content-Type": "application/json"} if data else {},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                return json.loads(resp.read())
        except urllib.error.HTTPError as exc:
            try:
                payload = json.loads(exc.read())
            except ValueError:
                payload = {"error": exc.reason}
            raise ServiceError(
                exc.code, payload, retry_after=_retry_after_seconds(exc)
            ) from exc
        except urllib.error.URLError as exc:
            # connection refused/reset, DNS failure, dropped mid-request:
            # surface as ServiceError so callers handle one type.
            raise ServiceError(
                0, {"error": "unreachable", "message": str(exc.reason)}
            ) from exc
        except (http.client.HTTPException, OSError) as exc:
            # urllib wraps connect-phase errors in URLError but lets a
            # connection dropped mid-response escape raw (e.g.
            # RemoteDisconnected); normalize those too.
            raise ServiceError(
                0, {"error": "unreachable", "message": str(exc)}
            ) from exc

    # -- routes ------------------------------------------------------------

    def healthy(self) -> bool:
        try:
            return bool(self._request("GET", "/healthz").get("ok"))
        except (ServiceError, OSError):
            return False

    def contract(self) -> Dict[str, object]:
        return self._request("GET", "/v1/contract")

    def stats(self) -> Dict[str, object]:
        return self._request("GET", "/v1/stats")

    def metrics(self) -> str:
        """Raw Prometheus text exposition from ``GET /metrics``."""
        request = urllib.request.Request(f"{self.base_url}/metrics")
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                return resp.read().decode("utf-8")
        except urllib.error.HTTPError as exc:
            raise ServiceError(exc.code, {"error": exc.reason}) from exc
        except urllib.error.URLError as exc:
            raise ServiceError(
                0, {"error": "unreachable", "message": str(exc.reason)}
            ) from exc
        except (http.client.HTTPException, OSError) as exc:
            raise ServiceError(
                0, {"error": "unreachable", "message": str(exc)}
            ) from exc

    def submit(self, payload: Dict[str, object]) -> Dict[str, object]:
        """POST a sweep; returns the job summary.

        A ``429``/``503`` (admission control, draining) is retried up
        to ``max_submit_retries`` times: each wait is the server's
        ``Retry-After`` hint scaled by the deterministic keyed backoff
        schedule, so concurrent rejected clients decorrelate without
        any RNG.  Validation errors (400) raise immediately.
        """
        key = hashlib.sha256(
            json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()
        ).hexdigest()[:16]
        attempt = 0
        while True:
            try:
                return self._request("POST", "/v1/sweeps", payload)
            except ServiceError as exc:
                if exc.status not in (429, 503) or attempt >= self.max_submit_retries:
                    raise
                attempt += 1
                hint = exc.retry_after if exc.retry_after is not None else 0.5
                # backoff_delay supplies the keyed jitter and growth; the
                # server's hint sets the floor so we never come back early.
                time.sleep(max(hint, backoff_delay(key, attempt, base=0.1)))

    def jobs(self) -> List[Dict[str, object]]:
        return list(self._request("GET", "/v1/jobs")["jobs"])

    def job(self, job_id: str) -> Dict[str, object]:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def cancel(self, job_id: str) -> Dict[str, object]:
        return self._request("DELETE", f"/v1/jobs/{job_id}")

    def wait(
        self, job_id: str, timeout: float = 300.0, poll: float = 0.2
    ) -> Dict[str, object]:
        """Poll until the job is terminal; returns the final status."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.job(job_id)
            if status["state"] in ("completed", "failed", "cancelled"):
                return status
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {status['state']} "
                    f"({status['completed']}/{status['points']} points) "
                    f"after {timeout:.0f}s"
                )
            time.sleep(poll)

    def stream(self, job_id: str) -> Iterator[Dict[str, object]]:
        """Yield Server-Sent progress events until the job is terminal."""
        request = urllib.request.Request(
            f"{self.base_url}/v1/jobs/{job_id}/stream"
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                for raw in resp:
                    line = raw.decode("utf-8").strip()
                    if line.startswith("data: "):
                        yield json.loads(line[len("data: "):])
        except urllib.error.HTTPError as exc:
            try:
                payload = json.loads(exc.read())
            except ValueError:
                payload = {"error": exc.reason}
            raise ServiceError(exc.code, payload) from exc
        except urllib.error.URLError as exc:
            raise ServiceError(
                0, {"error": "unreachable", "message": str(exc.reason)}
            ) from exc
