"""Validation-first request contract for the simulation service.

Every sweep submitted to the service is parsed against one
self-contained schema *before* anything is queued: unknown fields,
wrong types, out-of-range values, unknown benchmarks, and internally
inconsistent system configurations are all rejected upfront with
field-addressed, actionable messages — the engine only ever sees
perfectly valid work (the AsyncFlow ``SimulationPayload`` philosophy).

A validated :class:`SweepRequest` expands into the cross product of its
benchmarks and configurations as :class:`repro.runner.SimPoint`\\ s, so
the service's unit of work is *exactly* the runner's unit of work and
its cache keys (``SystemConfig.digest()`` + content hash) line up with
every result the batch path ever cached.

The schema is deliberately stdlib-only (dataclasses + explicit
validators): the service must run in the same minimal environment as
the simulator itself.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.config import (
    ConfigError,
    DRAM_PARTS,
    SystemConfig,
)
from repro.dram.backends import backend_names, has_backend
from repro.runner import SimPoint
from repro.workloads import BENCHMARKS

__all__ = [
    "MAX_MEMORY_REFS",
    "MIN_MEMORY_REFS",
    "MAX_POINTS_PER_SWEEP",
    "PRIORITY_RANGE",
    "SchemaError",
    "SweepRequest",
    "build_config",
    "parse_sweep_request",
]

#: bounds on one point's measured reference count.  The floor matches
#: :class:`repro.experiments.common.Profile` ("too small to be
#: meaningful"); the ceiling protects the service from a single request
#: monopolizing a worker for hours.
MIN_MEMORY_REFS = 100
MAX_MEMORY_REFS = 5_000_000

#: a sweep expands to benchmarks x configs points; cap the product so a
#: single malformed request cannot flood the queue.
MAX_POINTS_PER_SWEEP = 512

#: inclusive (most-urgent, least-urgent) priority bounds; lower numbers
#: dispatch first.
PRIORITY_RANGE = (0, 9)

#: config sections a request may override, and the top-level switches.
_CONFIG_SECTIONS = ("core", "l1i", "l1d", "l2", "dram", "prefetch")
_CONFIG_FLAGS = ("perfect_l2", "perfect_memory", "software_prefetch")


class SchemaError(ValueError):
    """A request failed validation.

    ``errors`` is a list of ``{"field": dotted.path, "message": why}``
    dicts — every problem found, not just the first, so one round trip
    fixes the whole payload.
    """

    def __init__(self, errors: Sequence[Mapping[str, str]]) -> None:
        self.errors: List[Dict[str, str]] = [dict(e) for e in errors]
        lines = "; ".join(f"{e['field']}: {e['message']}" for e in self.errors)
        super().__init__(f"invalid sweep request — {lines}")

    def to_dict(self) -> Dict[str, object]:
        return {"error": "invalid-request", "errors": self.errors}


class _Collector:
    """Accumulates field-addressed validation errors."""

    def __init__(self) -> None:
        self.errors: List[Dict[str, str]] = []

    def add(self, field: str, message: str) -> None:
        self.errors.append({"field": field, "message": message})

    def raise_if_any(self) -> None:
        if self.errors:
            raise SchemaError(self.errors)


def _suggest(name: str, known: Sequence[str]) -> str:
    """Nearest known name, for "did you mean" hints (cheap prefix/overlap)."""
    name_lower = name.lower()
    best, best_score = "", 0
    for candidate in known:
        score = sum(
            1 for a, b in zip(name_lower, candidate.lower()) if a == b
        )
        if candidate.lower().startswith(name_lower[:3]):
            score += 2
        if score > best_score:
            best, best_score = candidate, score
    return f" (did you mean {best!r}?)" if best_score >= 2 else ""


def build_config(
    overrides: Mapping[str, Any], field_prefix: str = "config"
) -> SystemConfig:
    """A validated :class:`SystemConfig` from a dict of overrides.

    ``overrides`` maps section names (``core``/``l1i``/``l1d``/``l2``/
    ``dram``/``prefetch``) to dicts of field overrides, plus the
    top-level boolean switches.  ``dram.part`` may be a speed-grade
    name from :data:`repro.core.config.DRAM_PARTS`.  Anything unknown,
    ill-typed, or internally inconsistent raises :class:`SchemaError`
    with the full dotted field path.
    """
    errors = _Collector()
    if not isinstance(overrides, Mapping):
        errors.add(field_prefix, f"must be an object, got {type(overrides).__name__}")
        errors.raise_if_any()
    base = SystemConfig()
    replacements: Dict[str, Any] = {}
    for key, value in overrides.items():
        if key in _CONFIG_FLAGS:
            if not isinstance(value, bool):
                errors.add(f"{field_prefix}.{key}", "must be a boolean")
            else:
                replacements[key] = value
            continue
        if key not in _CONFIG_SECTIONS:
            known = list(_CONFIG_SECTIONS) + list(_CONFIG_FLAGS)
            errors.add(
                f"{field_prefix}.{key}",
                f"unknown config section{_suggest(key, known)}; "
                f"expected one of {', '.join(known)}",
            )
            continue
        if not isinstance(value, Mapping):
            errors.add(f"{field_prefix}.{key}", "must be an object of field overrides")
            continue
        section = getattr(base, key)
        fields = {f.name: f for f in dataclasses.fields(section)}
        section_overrides: Dict[str, Any] = {}
        for fname, fvalue in value.items():
            path = f"{field_prefix}.{key}.{fname}"
            if fname not in fields:
                errors.add(
                    path,
                    f"unknown field{_suggest(fname, list(fields))}; "
                    f"expected one of {', '.join(sorted(fields))}",
                )
                continue
            if key == "dram" and fname == "part":
                if fvalue not in DRAM_PARTS:
                    errors.add(
                        path,
                        f"unknown DRDRAM part {fvalue!r}; "
                        f"expected one of {', '.join(sorted(DRAM_PARTS))}",
                    )
                    continue
                fvalue = DRAM_PARTS[fvalue]
            elif key == "dram" and fname == "backend":
                # Checked here, not in DRAMConfig's own validation, so
                # the client gets a field-addressed 400 enumerating the
                # registered backends instead of a deep ConfigError.
                if not isinstance(fvalue, str) or not has_backend(fvalue):
                    known = backend_names()
                    shown = fvalue if isinstance(fvalue, str) else repr(fvalue)
                    errors.add(
                        path,
                        f"unknown DRAM backend {shown!r}"
                        f"{_suggest(str(fvalue), known)}; "
                        f"expected one of {', '.join(known)}",
                    )
                    continue
            elif isinstance(fvalue, bool):
                pass  # bool is fine wherever the dataclass default is bool
            elif not isinstance(fvalue, (int, float, str)):
                errors.add(path, f"must be a scalar, got {type(fvalue).__name__}")
                continue
            section_overrides[fname] = fvalue
        if section_overrides:
            try:
                replacements[key] = dataclasses.replace(section, **section_overrides)
            except ConfigError as exc:
                errors.add(f"{field_prefix}.{key}", str(exc))
            except (TypeError, ValueError) as exc:
                errors.add(f"{field_prefix}.{key}", f"invalid overrides: {exc}")
    errors.raise_if_any()
    try:
        return dataclasses.replace(base, **replacements).validate()
    except ConfigError as exc:
        raise SchemaError([{"field": field_prefix, "message": str(exc)}]) from exc


@dataclass(frozen=True)
class SweepRequest:
    """One validated sweep: benchmarks x configs at a fixed effort.

    Construct through :func:`parse_sweep_request` — the constructor
    assumes already-validated parts.  ``configs`` holds the *resolved*
    :class:`SystemConfig` objects alongside the raw override payloads
    (``config_payloads``) so the journal can replay the exact request.
    """

    benchmarks: Tuple[str, ...]
    configs: Tuple[SystemConfig, ...]
    config_payloads: Tuple[Dict[str, Any], ...]
    memory_refs: int
    seed: int = 0
    priority: int = 5
    tags: Optional[Dict[str, str]] = None
    #: client-chosen correlation id, echoed through run-log events and
    #: job status; defaults to the job id when omitted.
    trace_id: Optional[str] = None

    def points(self) -> List[SimPoint]:
        """The sweep's cross product as runner points, in stable order."""
        return [
            SimPoint(
                benchmark=benchmark,
                config=config,
                memory_refs=self.memory_refs,
                seed=self.seed,
            )
            for config in self.configs
            for benchmark in self.benchmarks
        ]

    def to_dict(self) -> Dict[str, object]:
        """Journal/replay form: raw payloads, not resolved dataclasses."""
        out: Dict[str, object] = {
            "benchmarks": list(self.benchmarks),
            "configs": [dict(p) for p in self.config_payloads],
            "memory_refs": self.memory_refs,
            "seed": self.seed,
            "priority": self.priority,
        }
        if self.tags:
            out["tags"] = dict(self.tags)
        if self.trace_id is not None:
            out["trace_id"] = self.trace_id
        return out


def _check_int(
    errors: _Collector,
    payload: Mapping[str, Any],
    field: str,
    default: int,
    low: int,
    high: int,
) -> int:
    value = payload.get(field, default)
    if isinstance(value, bool) or not isinstance(value, int):
        errors.add(field, f"must be an integer, got {type(value).__name__}")
        return default
    if not low <= value <= high:
        errors.add(field, f"must be in [{low}, {high}], got {value}")
        return default
    return value


_KNOWN_FIELDS = (
    "benchmarks",
    "configs",
    "config",
    "memory_refs",
    "seed",
    "priority",
    "tags",
    "trace_id",
)

#: charset/length bounds for client trace ids: they land in log lines,
#: file names, and metric labels, so keep them boring.
_TRACE_ID_MAX_LEN = 128
_TRACE_ID_CHARS = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._:-"
)


def parse_sweep_request(payload: Mapping[str, Any]) -> SweepRequest:
    """Validate one raw submission payload into a :class:`SweepRequest`.

    Collects *every* problem before raising, so the caller's 400
    response lists all fixes at once.  Accepts either ``config`` (one
    override object) or ``configs`` (a list of them); an omitted config
    means the paper's baseline system.
    """
    errors = _Collector()
    if not isinstance(payload, Mapping):
        raise SchemaError(
            [{"field": "<root>", "message": "request body must be a JSON object"}]
        )
    for key in payload:
        if key not in _KNOWN_FIELDS:
            errors.add(
                key,
                f"unknown field{_suggest(str(key), list(_KNOWN_FIELDS))}; "
                f"expected one of {', '.join(_KNOWN_FIELDS)}",
            )

    raw_benchmarks = payload.get("benchmarks")
    benchmarks: Tuple[str, ...] = ()
    if raw_benchmarks is None:
        errors.add("benchmarks", "is required (a non-empty list of benchmark names)")
    elif not isinstance(raw_benchmarks, (list, tuple)) or not raw_benchmarks:
        errors.add("benchmarks", "must be a non-empty list of benchmark names")
    else:
        names: List[str] = []
        for i, name in enumerate(raw_benchmarks):
            if not isinstance(name, str):
                errors.add(f"benchmarks[{i}]", "must be a string")
            elif name not in BENCHMARKS:
                errors.add(
                    f"benchmarks[{i}]",
                    f"unknown benchmark {name!r}{_suggest(name, BENCHMARKS)}; "
                    f"see GET /v1/contract for the full list",
                )
            elif name in names:
                errors.add(f"benchmarks[{i}]", f"duplicate benchmark {name!r}")
            else:
                names.append(name)
        benchmarks = tuple(names)

    if "config" in payload and "configs" in payload:
        errors.add("config", "give either 'config' or 'configs', not both")
    raw_configs = payload.get("configs")
    if raw_configs is None:
        raw_configs = [payload.get("config", {})]
    if not isinstance(raw_configs, (list, tuple)) or not raw_configs:
        errors.add("configs", "must be a non-empty list of config-override objects")
        raw_configs = []

    memory_refs = _check_int(
        errors, payload, "memory_refs", 8_000, MIN_MEMORY_REFS, MAX_MEMORY_REFS
    )
    seed = _check_int(errors, payload, "seed", 0, 0, 2**31 - 1)
    priority = _check_int(
        errors, payload, "priority", 5, PRIORITY_RANGE[0], PRIORITY_RANGE[1]
    )

    tags = payload.get("tags")
    if tags is not None:
        if not isinstance(tags, Mapping) or not all(
            isinstance(k, str) and isinstance(v, str) for k, v in tags.items()
        ):
            errors.add("tags", "must be an object of string keys to string values")
            tags = None

    trace_id = payload.get("trace_id")
    if trace_id is not None:
        if not isinstance(trace_id, str) or not trace_id:
            errors.add("trace_id", "must be a non-empty string")
            trace_id = None
        elif len(trace_id) > _TRACE_ID_MAX_LEN:
            errors.add(
                "trace_id",
                f"must be at most {_TRACE_ID_MAX_LEN} characters, "
                f"got {len(trace_id)}",
            )
            trace_id = None
        elif not set(trace_id) <= _TRACE_ID_CHARS:
            errors.add(
                "trace_id",
                "may only contain letters, digits, and the characters . _ : -",
            )
            trace_id = None

    configs: List[SystemConfig] = []
    config_payloads: List[Dict[str, Any]] = []
    for i, overrides in enumerate(raw_configs):
        field = f"configs[{i}]" if len(raw_configs) > 1 else "config"
        try:
            configs.append(build_config(overrides, field_prefix=field))
            config_payloads.append(dict(overrides))
        except SchemaError as exc:
            errors.errors.extend(exc.errors)

    if benchmarks and configs:
        total = len(benchmarks) * len(configs)
        if total > MAX_POINTS_PER_SWEEP:
            errors.add(
                "configs",
                f"sweep expands to {total} points "
                f"({len(benchmarks)} benchmarks x {len(configs)} configs); "
                f"the limit is {MAX_POINTS_PER_SWEEP} — split the sweep",
            )

    errors.raise_if_any()
    return SweepRequest(
        benchmarks=benchmarks,
        configs=tuple(configs),
        config_payloads=tuple(config_payloads),
        memory_refs=memory_refs,
        seed=seed,
        priority=priority,
        tags=dict(tags) if tags else None,
        trace_id=trace_id,
    )


def contract_description(
    limits: Optional[Mapping[str, object]] = None,
) -> Dict[str, object]:
    """Machine-readable contract summary served at ``GET /v1/contract``.

    ``limits`` (from :meth:`repro.service.engine.ServiceConfig.limits`)
    adds the instance's admission/robustness knobs, so a client can see
    the backpressure thresholds it will be held to.
    """
    out: Dict[str, object] = {
        "fields": {
            "benchmarks": f"required: non-empty list drawn from {len(BENCHMARKS)} names",
            "config | configs": "optional: system-config override object(s); "
            f"sections {', '.join(_CONFIG_SECTIONS)}; flags {', '.join(_CONFIG_FLAGS)}",
            "memory_refs": f"optional int in [{MIN_MEMORY_REFS}, {MAX_MEMORY_REFS}] (default 8000)",
            "seed": "optional int >= 0 (default 0)",
            "priority": f"optional int in [{PRIORITY_RANGE[0]}, {PRIORITY_RANGE[1]}], "
            "lower dispatches first (default 5)",
            "tags": "optional string-to-string object, echoed back verbatim",
            "trace_id": "optional correlation id (letters, digits, . _ : -, "
            f"max {_TRACE_ID_MAX_LEN} chars) threaded through run-log events; "
            "defaults to the job id",
        },
        "benchmarks": list(BENCHMARKS),
        "dram_parts": sorted(DRAM_PARTS),
        "dram_backends": list(backend_names()),
        "max_points_per_sweep": MAX_POINTS_PER_SWEEP,
    }
    if limits is not None:
        out["service_limits"] = dict(limits)
    return out
