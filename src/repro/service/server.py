"""Stdlib-only asyncio HTTP front end for the simulation service.

A deliberately small HTTP/1.1 implementation over
``asyncio.start_server`` — no framework, no dependency beyond the
standard library, matching the project's constraint that everything
runs in the simulator's own minimal environment.

Routes (all JSON unless noted):

========  ==========================  =====================================
method    path                        meaning
========  ==========================  =====================================
GET       ``/healthz``                liveness probe
GET       ``/v1/contract``            machine-readable request contract
GET       ``/v1/stats``               service counters (queue/store/flight)
GET       ``/metrics``                Prometheus text exposition (not JSON)
POST      ``/v1/sweeps``              submit a sweep → ``202`` + job id,
                                      ``400`` with field-addressed errors,
                                      ``429`` + ``Retry-After`` when
                                      admission control refuses, or
                                      ``503`` while draining
GET       ``/v1/jobs``                all job summaries
GET       ``/v1/jobs/<id>``           one job; includes per-point results
                                      once completed
GET       ``/v1/jobs/<id>/stream``    Server-Sent Events progress stream
DELETE    ``/v1/jobs/<id>``           cancel a queued *or running* job
========  ==========================  =====================================

Every connection handles one request and closes — the clients here are
pollers and scripts, not browsers, and one-shot connections keep the
server trivially correct.

Two robustness notes.  A 500 body never echoes internal exception text
(the traceback goes to the log; the client gets a generic message and
should not be handed implementation details).  And the deterministic
chaos harness can schedule a ``drop`` fault against a request path —
the connection is aborted before any response bytes, exercising every
client's mid-request disconnect handling.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Dict, Optional, Tuple

from repro.obs.log import get_logger
from repro.runner import faults
from repro.service.engine import AdmissionError, SimulationService
from repro.service.schema import SchemaError, contract_description

__all__ = ["ServiceServer"]

_log = get_logger("repro.service")

#: refuse request bodies beyond this size (a full 512-point sweep with
#: generous config payloads fits in a few tens of kilobytes).
MAX_BODY_BYTES = 1 << 20

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


def _response(
    status: int, payload: Dict[str, object], extra_headers: str = ""
) -> bytes:
    body = json.dumps(payload).encode("utf-8")
    head = (
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"{extra_headers}"
        f"Connection: close\r\n\r\n"
    )
    return head.encode("ascii") + body


def _text_response(status: int, text: str, content_type: str) -> bytes:
    body = text.encode("utf-8")
    head = (
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n\r\n"
    )
    return head.encode("ascii") + body


#: Prometheus text exposition format version (the standard 0.0.4 type).
_METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _route_of(path: str) -> str:
    """Normalize a request path to a bounded-cardinality metric label.

    Job ids must not mint one time series each, and unknown paths all
    collapse into a single ``other`` bucket.
    """
    path = path.rstrip("/") or "/"
    if path in ("/healthz", "/metrics", "/v1/contract", "/v1/stats",
                "/v1/sweeps", "/v1/jobs"):
        return path
    if path.startswith("/v1/jobs/"):
        return "/v1/jobs/{id}/stream" if path.endswith("/stream") else "/v1/jobs/{id}"
    return "other"


class ServiceServer:
    """Bind a :class:`SimulationService` to a TCP port."""

    def __init__(
        self, service: SimulationService, host: str = "127.0.0.1", port: int = 8642
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        #: per-path request counters for deterministic ``drop`` faults.
        self._path_counts: Dict[str, int] = {}

    @property
    def bound_port(self) -> int:
        """The actual port (useful when constructed with ``port=0``)."""
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        await self.service.start()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self.bound_port
        _log.info(f"[service] listening on http://{self.host}:{self.port}")

    async def stop(
        self, drain: bool = False, deadline: Optional[float] = None
    ) -> None:
        """Stop listening, then stop the engine (optionally draining).

        The listener closes *first* in both modes, so a drain never
        races new submissions — see
        :meth:`repro.service.engine.SimulationService.stop`.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.stop(drain=drain, deadline=deadline)

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    # -- request handling --------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        started = time.monotonic()
        method_label, route, status = "GET", "malformed", 0
        try:
            request = await self._read_request(reader)
            if request is None:
                status = 400
                writer.write(_response(400, {"error": "malformed-request"}))
            else:
                method, path, body = request
                method_label, route = method, _route_of(path)
                if self._drop_planned(path):
                    # injected mid-request connection drop: abort with no
                    # response bytes, like a crashed proxy would.
                    writer.transport.abort()
                    return
                if path.rstrip("/").endswith("/stream") and method == "GET":
                    status = await self._stream(writer, path)
                    return  # _stream closes the connection itself
                response = await self._dispatch(method, path, body)
                status = int(response[9:12])
                writer.write(response)
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except Exception as exc:  # never kill the accept loop
            # full detail to the log; a deliberately generic body to the
            # client — internal exception text is not part of the API.
            _log.warning(f"[service] request failed: {type(exc).__name__}: {exc}")
            status = 500
            try:
                writer.write(
                    _response(
                        500,
                        {"error": "internal",
                         "message": "internal error; see server log"},
                    )
                )
                await writer.drain()
            except ConnectionError:
                pass
        finally:
            if status:
                self.service.observe_http(
                    method_label, route, status, time.monotonic() - started
                )
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Optional[Dict[str, object]]]]:
        """Parse one request; None on anything malformed."""
        try:
            head = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), timeout=10.0
            )
        except (asyncio.LimitOverrunError, asyncio.TimeoutError):
            return None
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3:
            return None
        method, target = parts[0].upper(), parts[1]
        path = target.split("?", 1)[0]
        headers = {}
        for line in lines[1:]:
            if ":" in line:
                name, _, value = line.partition(":")
                headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            return None  # malformed Content-Length is the client's 400
        if length < 0 or length > MAX_BODY_BYTES:
            return None
        body: Optional[Dict[str, object]] = None
        if length:
            raw = await reader.readexactly(length)
            try:
                body = json.loads(raw)
            except ValueError:
                return None
        return method, path, body

    def _drop_planned(self, path: str) -> bool:
        """True when the fault plan drops this occurrence of ``path``."""
        path = path.rstrip("/") or "/"
        occurrence = self._path_counts.get(path, 0)
        self._path_counts[path] = occurrence + 1
        return faults.service_fault("drop", path, occurrence) is not None

    async def _dispatch(
        self, method: str, path: str, body: Optional[Dict[str, object]]
    ) -> bytes:
        path = path.rstrip("/") or "/"
        if path == "/healthz" and method == "GET":
            return _response(200, {"ok": True})
        if path == "/v1/contract" and method == "GET":
            return _response(
                200, contract_description(self.service.config.limits())
            )
        if path == "/v1/stats" and method == "GET":
            return _response(200, self.service.stats())
        if path == "/metrics" and method == "GET":
            return _text_response(
                200, self.service.render_metrics(), _METRICS_CONTENT_TYPE
            )
        if path == "/v1/sweeps":
            if method != "POST":
                return _response(405, {"error": "method-not-allowed"})
            if body is None:
                return _response(
                    400, {"error": "invalid-request",
                          "errors": [{"field": "<root>",
                                      "message": "a JSON body is required"}]}
                )
            try:
                job = self.service.submit_payload(body)
            except SchemaError as exc:
                return _response(400, exc.to_dict())
            except AdmissionError as exc:
                status = 503 if exc.reason == "draining" else 429
                return _response(
                    status,
                    exc.to_dict(),
                    extra_headers=f"Retry-After: {exc.retry_after}\r\n",
                )
            return _response(202, job.summary())
        if path == "/v1/jobs" and method == "GET":
            return _response(
                200,
                {"jobs": [job.summary()
                          for job in self.service.queue.jobs.values()]},
            )
        if path.startswith("/v1/jobs/"):
            job_id = path[len("/v1/jobs/"):]
            if method == "GET":
                status = self.service.job_status(job_id)
                if status is None:
                    return _response(404, {"error": "no-such-job", "id": job_id})
                return _response(200, status)
            if method == "DELETE":
                cancelled = await self.service.cancel_job(job_id)
                if cancelled is None:
                    return _response(404, {"error": "no-such-job", "id": job_id})
                if cancelled:
                    return _response(200, {"id": job_id, "state": "cancelled"})
                return _response(
                    409,
                    {"error": "not-cancellable", "id": job_id,
                     "state": self.service.queue.jobs[job_id].state},
                )
            return _response(405, {"error": "method-not-allowed"})
        return _response(404, {"error": "no-such-route", "path": path})

    async def _stream(self, writer: asyncio.StreamWriter, path: str) -> int:
        """Server-Sent Events: one ``data:`` line per progress event.

        Returns the response status for the HTTP metrics.
        """
        job_id = path.rstrip("/")[len("/v1/jobs/"):-len("/stream")].rstrip("/")
        if self.service.queue.jobs.get(job_id) is None:
            writer.write(_response(404, {"error": "no-such-job", "id": job_id}))
            await writer.drain()
            return 404
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-cache\r\n"
            b"Connection: close\r\n\r\n"
        )
        await writer.drain()
        watcher = self.service.watch(job_id)
        try:
            async for event in watcher:
                writer.write(f"data: {json.dumps(event)}\n\n".encode("utf-8"))
                await writer.drain()
        finally:
            # a client that disconnects mid-stream must not leave the
            # watcher parked on the progress condition: close it here,
            # deterministically, instead of waiting on the GC.
            await watcher.aclose()
        return 200
