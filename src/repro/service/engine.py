"""The asyncio execution engine behind the simulation service.

:class:`SimulationService` ties the contract, the queue, and the shared
store together:

* accepted sweeps (already validated by :mod:`repro.service.schema`)
  enter the persistent :class:`~repro.service.queue.JobQueue` — but
  only after **admission control**: a bounded queue (jobs, points, and
  serialized request bytes) rejects over-limit submissions with
  :class:`AdmissionError`, which the HTTP layer turns into ``429`` plus
  a ``Retry-After`` hint derived from the live backlog;
* ``job_concurrency`` dispatcher tasks drain it in priority order;
* each job's points resolve concurrently through the
  :class:`~repro.service.dedup.SharedResultStore` and, on a true miss,
  :class:`~repro.service.dedup.SingleFlight` — the winning flight runs
  :func:`repro.runner.worker.execute_point` in a thread-pool executor
  (the same function behind ``Runner.run_points``, so service results
  are field-for-field identical to batch results);
* every executor call sits under a **per-point watchdog**
  (``asyncio.wait_for``): a point that exceeds ``point_timeout`` gets a
  runner-taxonomy :class:`~repro.runner.FailureRecord` with
  ``kind="timeout"`` and is retried, while the orphaned thread is
  *fenced* — its attempt stamp is invalidated and its late result is
  discarded at the futures layer, never published to the store;
* repeated timeouts on one content key trip a **circuit breaker** that
  fast-fails that key for a cooldown window instead of re-burning
  worker threads, then half-opens to probe recovery;
* failures follow the runner's policy: bounded retries with
  deterministic keyed backoff (:func:`repro.runner.backoff_delay`),
  :class:`~repro.runner.FailureRecord` entries for every attempt, and
  sanitizer-style immediate fatality is preserved for deterministic
  errors.

Shutdown is two-mode.  ``stop()`` is the hard path: dispatchers are
cancelled mid-job and the journal's replay re-queues whatever was
running (crash-equivalent, and crash-safe for the same reason).
``stop(drain=True, deadline=...)`` is the graceful path: admission
closes, dispatchers finish the jobs they hold (up to the deadline,
after which stragglers are cancelled), interrupted jobs are explicitly
re-queued, and a ``service-shutdown`` marker is journaled so the next
instance knows the shutdown was clean.

Telemetry goes to an optional run log with the runner's own event
vocabulary (``point-started`` / ``point-completed`` / ``point-retried``
/ ``point-failed``) plus the service-level events ``job-submitted``,
``job-rejected``, ``job-completed``, ``job-cancelled``,
``point-cache-hit``, ``point-deduped``, ``breaker-tripped`` and
``breaker-recovered`` — so "this point was computed exactly once" is
directly checkable by counting ``point-completed`` records per key.
"""

from __future__ import annotations

import asyncio
import datetime
import json
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import AsyncIterator, Dict, List, Optional

from repro import __version__
from repro.obs.log import JsonlSink, get_logger
from repro.obs.metrics import MetricsRegistry
from repro.runner import RESULT_VERSION, FailureRecord, SimPoint
from repro.runner.runner import backoff_delay
from repro.runner.worker import execute_point
from repro.sanitize.errors import SanitizerError
from repro.service.dedup import FlightCancelled, SharedResultStore, SingleFlight
from repro.service.queue import Job, JobQueue, JobState
from repro.service.schema import SweepRequest, parse_sweep_request

__all__ = [
    "AdmissionError",
    "PointComputeError",
    "ServiceConfig",
    "SimulationService",
]

_log = get_logger("repro.service")


class PointComputeError(RuntimeError):
    """A point exhausted its retry budget (or hit a deterministic error).

    Carries the failure records of every attempt the flight made;
    follower jobs sharing the flight receive the same exception.
    """

    def __init__(self, point: SimPoint, key: str, records: List[FailureRecord]) -> None:
        self.point = point
        self.key = key
        self.records = records
        last = records[-1] if records else None
        detail = f"{last.kind}: {last.message}" if last else "unknown failure"
        super().__init__(f"point {point.label()} failed permanently — {detail}")


class AdmissionError(RuntimeError):
    """A submission was refused by admission control (HTTP ``429``/``503``).

    ``reason`` is a stable machine-readable token (``queue-full``,
    ``backlog-full``, ``bytes-full``, ``draining``); ``retry_after`` is
    the server's estimate, in seconds, of when capacity frees up.
    """

    def __init__(self, reason: str, message: str, retry_after: float) -> None:
        self.reason = reason
        self.retry_after = retry_after
        super().__init__(message)

    def to_dict(self) -> Dict[str, object]:
        return {
            "error": "draining" if self.reason == "draining" else "over-capacity",
            "reason": self.reason,
            "message": str(self),
            "retry_after": self.retry_after,
        }


@dataclass
class _BreakerState:
    """Per-content-key circuit-breaker bookkeeping."""

    consecutive: int = 0
    #: monotonic deadline until which the key fast-fails; 0 = closed.
    open_until: float = 0.0
    tripped: bool = False


@dataclass
class ServiceConfig:
    """Knobs for one service instance."""

    #: JSONL journal backing the persistent job queue.
    journal_path: str
    #: shared on-disk result store; None = memo-only (no persistence).
    cache_dir: Optional[str] = None
    #: simulation threads (one point simulates per thread at a time).
    workers: int = 2
    #: jobs dispatched concurrently; defaults to ``workers``.
    job_concurrency: Optional[int] = None
    #: failed attempts retried per point (the runner's default).
    max_retries: int = 2
    #: base seconds for the deterministic keyed backoff schedule.
    retry_backoff: float = 0.05
    #: optional JSONL telemetry sink (runner-compatible event names).
    run_log: Optional[JsonlSink] = None
    #: admission: max jobs waiting in the queue (0 = unlimited).
    max_queued_jobs: int = 64
    #: admission: max unresolved points across live jobs (0 = unlimited).
    max_queued_points: int = 4096
    #: admission: max serialized request bytes held by live jobs
    #: (0 = unlimited).
    max_inflight_bytes: int = 8 << 20
    #: per-point watchdog in seconds; None disables the watchdog.
    point_timeout: Optional[float] = None
    #: consecutive timeouts on one key that trip the circuit breaker.
    breaker_threshold: int = 3
    #: seconds a tripped key fast-fails before a half-open probe.
    breaker_cooldown: float = 30.0
    #: journal size that triggers snapshot compaction (0 disables).
    journal_max_bytes: int = 4 << 20

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.job_concurrency is None:
            self.job_concurrency = self.workers
        if self.job_concurrency < 1:
            raise ValueError(
                f"job_concurrency must be >= 1, got {self.job_concurrency}"
            )
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        for name in ("max_queued_jobs", "max_queued_points",
                     "max_inflight_bytes", "journal_max_bytes"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0 (0 disables the limit)")
        if self.point_timeout is not None and self.point_timeout <= 0:
            raise ValueError(
                f"point_timeout must be positive or None, got {self.point_timeout}"
            )
        if self.breaker_threshold < 1:
            raise ValueError(
                f"breaker_threshold must be >= 1, got {self.breaker_threshold}"
            )
        if self.breaker_cooldown <= 0:
            raise ValueError(
                f"breaker_cooldown must be positive, got {self.breaker_cooldown}"
            )

    def limits(self) -> Dict[str, object]:
        """The admission/robustness knobs, for ``/v1/contract``."""
        return {
            "max_queued_jobs": self.max_queued_jobs,
            "max_queued_points": self.max_queued_points,
            "max_inflight_bytes": self.max_inflight_bytes,
            "point_timeout": self.point_timeout,
            "breaker_threshold": self.breaker_threshold,
            "breaker_cooldown": self.breaker_cooldown,
            "max_retries": self.max_retries,
        }


class SimulationService:
    """Long-lived engine: submit → queue → dedup → simulate → results."""

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.queue = JobQueue(config.journal_path)
        self.store = SharedResultStore(config.cache_dir)
        self.flight = SingleFlight()
        self.run_log = config.run_log
        self.simulated = 0
        self.sim_seconds = 0.0
        self.timeouts = 0
        self.breaker_trips = 0
        self.breaker_fast_fails = 0
        self.breaker_recoveries = 0
        self.rejected: Dict[str, int] = {}
        self._breaker: Dict[str, _BreakerState] = {}
        #: per-key attempt stamps; a timed-out attempt's stamp is
        #: invalidated so its orphaned thread can never publish.
        self._stamps: Dict[str, int] = {}
        self._job_tasks: Dict[str, List["asyncio.Task"]] = {}
        self._executor: Optional[ThreadPoolExecutor] = None
        self._dispatchers: List["asyncio.Task"] = []
        self._wake: Optional[asyncio.Event] = None
        self._progress: Optional[asyncio.Condition] = None
        self._stopping = False
        self._draining = False
        self.started_at = time.time()
        self._started_monotonic = time.monotonic()
        self._init_metrics()

    def _init_metrics(self) -> None:
        """Build the Prometheus registry behind ``GET /metrics``.

        Latency histograms are observed at the event sites (queue pop,
        leader success, HTTP dispatch); everything that already has an
        authoritative counter on this object or the store is *mirrored*
        into the registry by a render-time callback instead of being
        double-counted at the call sites — the engine's own counters
        stay the source of truth that ``/v1/stats`` reports.
        """
        self.metrics = MetricsRegistry()
        m = self.metrics
        self._m_queue_wait = m.histogram(
            "repro_job_queue_wait_seconds",
            "Seconds a job waited between submission and dispatch",
        )
        self._m_point_seconds = m.histogram(
            "repro_point_seconds",
            "Wall seconds one successful point simulation took",
        )
        self._m_http_seconds = m.histogram(
            "repro_http_request_seconds",
            "HTTP request handling latency by normalized route",
            ("method", "route"),
        )
        self._m_http_requests = m.counter(
            "repro_http_requests_total",
            "HTTP requests served by normalized route and status",
            ("method", "route", "status"),
        )
        self._m_simulated = m.counter(
            "repro_points_simulated_total", "Points simulated by this instance"
        )
        self._m_sim_seconds = m.counter(
            "repro_sim_seconds_total", "Cumulative simulation wall seconds"
        )
        self._m_store_hits = m.counter(
            "repro_store_hits_total",
            "Result-store hits by tier (memo or disk)",
            ("tier",),
        )
        self._m_store_misses = m.counter(
            "repro_store_misses_total", "Result-store misses"
        )
        self._m_rejected = m.counter(
            "repro_admission_rejected_total",
            "Submissions refused by admission control, by reason",
            ("reason",),
        )
        # Pre-declare the known reasons so scrapers see the series at
        # zero instead of having them appear on the first reject.
        for reason in ("draining", "queue-full", "backlog-full", "bytes-full"):
            self._m_rejected.labels(reason=reason)
        self._m_timeouts = m.counter(
            "repro_watchdog_timeouts_total", "Per-point watchdog expiries"
        )
        self._m_breaker_trips = m.counter(
            "repro_breaker_trips_total", "Circuit-breaker trips"
        )
        self._m_breaker_fast_fails = m.counter(
            "repro_breaker_fast_fails_total",
            "Points fast-failed by an open circuit breaker",
        )
        self._m_breaker_recoveries = m.counter(
            "repro_breaker_recoveries_total", "Circuit-breaker recoveries"
        )
        self._m_breaker_open = m.gauge(
            "repro_breaker_open_keys", "Content keys currently fast-failing"
        )
        self._m_jobs = m.gauge(
            "repro_jobs", "Jobs known to the queue, by lifecycle state", ("state",)
        )
        self._m_queued_jobs = m.gauge("repro_queued_jobs", "Jobs waiting in the queue")
        self._m_backlog_points = m.gauge(
            "repro_backlog_points", "Unresolved points across live jobs"
        )
        self._m_inflight_bytes = m.gauge(
            "repro_inflight_bytes", "Serialized request bytes held by live jobs"
        )
        self._m_uptime = m.gauge(
            "repro_uptime_seconds", "Seconds since the service started"
        )
        m.register_callback(self._mirror_metrics)

    def _mirror_metrics(self, _registry: Optional[MetricsRegistry] = None) -> None:
        """Refresh mirrored counters/gauges from their authoritative sources."""
        store = self.store.summary()
        self._m_store_hits.labels(tier="memo").set_total(store["memo_hits"])
        self._m_store_hits.labels(tier="disk").set_total(store["disk_hits"])
        self._m_store_misses.set_total(store["misses"])
        self._m_simulated.set_total(self.simulated)
        self._m_sim_seconds.set_total(self.sim_seconds)
        self._m_timeouts.set_total(self.timeouts)
        self._m_breaker_trips.set_total(self.breaker_trips)
        self._m_breaker_fast_fails.set_total(self.breaker_fast_fails)
        self._m_breaker_recoveries.set_total(self.breaker_recoveries)
        for reason, count in self.rejected.items():
            self._m_rejected.labels(reason=reason).set_total(count)
        now = time.monotonic()
        self._m_breaker_open.set(
            sum(1 for state in self._breaker.values() if state.open_until > now)
        )
        by_state: Dict[str, int] = {}
        for job in self.queue.jobs.values():
            by_state[job.state] = by_state.get(job.state, 0) + 1
        for state, count in by_state.items():
            self._m_jobs.labels(state=state).set(count)
        self._m_queued_jobs.set(self.queue.pending())
        self._m_backlog_points.set(self.queue.backlog_points())
        self._m_inflight_bytes.set(self.queue.inflight_bytes())
        self._m_uptime.set(round(now - self._started_monotonic, 3))

    def observe_http(
        self, method: str, route: str, status: int, seconds: float
    ) -> None:
        """Record one served HTTP request (called by the server layer)."""
        self._m_http_seconds.labels(method=method, route=route).observe(seconds)
        self._m_http_requests.labels(
            method=method, route=route, status=str(status)
        ).inc()

    def render_metrics(self) -> str:
        """Prometheus text exposition for ``GET /metrics``."""
        return self.metrics.render_prometheus()

    def uptime_seconds(self) -> float:
        return round(time.monotonic() - self._started_monotonic, 3)

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Spawn the dispatchers; resumes any journal-recovered jobs."""
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.workers, thread_name_prefix="repro-sim"
        )
        self._wake = asyncio.Event()
        self._progress = asyncio.Condition()
        self._stopping = False
        self._draining = False
        self.started_at = time.time()
        self._started_monotonic = time.monotonic()
        self._dispatchers = [
            asyncio.create_task(self._dispatch_loop(), name=f"dispatcher-{i}")
            for i in range(self.config.job_concurrency)
        ]
        recovered = self.queue.recovered_job_ids
        if recovered:
            _log.info(
                f"[service] recovered {len(recovered)} unfinished job(s) "
                f"from {self.queue.journal_path}"
            )
            self._wake.set()

    async def stop(
        self, drain: bool = False, deadline: Optional[float] = None
    ) -> None:
        """Shut the engine down.

        ``drain=False`` (default) is the hard path: dispatchers are
        cancelled mid-job; anything running is left non-terminal in the
        journal, which is exactly what replay re-queues after a crash.

        ``drain=True`` closes admission, lets dispatchers finish the
        jobs they hold (up to ``deadline`` seconds, then cancels the
        stragglers), re-queues every interrupted job at its original
        priority, and journals a clean ``service-shutdown`` marker.
        """
        self._draining = True
        if self._wake is not None:
            self._wake.set()  # idle dispatchers must observe the drain
        if drain and self._dispatchers:
            _, pending = await asyncio.wait(self._dispatchers, timeout=deadline)
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        else:
            for task in self._dispatchers:
                task.cancel()
            for task in self._dispatchers:
                try:
                    await task
                except (asyncio.CancelledError, Exception):
                    pass
        self._stopping = True
        self._dispatchers = []
        if drain:
            requeued = []
            for job in self.queue.jobs.values():
                if job.state == JobState.RUNNING:
                    self.queue.requeue(job)
                    requeued.append(job.id)
            self.queue.shutdown_marker(
                clean=True,
                drained=True,
                requeued=requeued,
                pending=self.queue.pending(),
            )
            if requeued:
                _log.info(
                    f"[service] drain deadline expired: re-queued "
                    f"{len(requeued)} interrupted job(s)"
                )
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None
        self.queue.close()
        if self.run_log is not None:
            self.run_log.close()

    @property
    def draining(self) -> bool:
        return self._draining

    # -- submission --------------------------------------------------------

    def submit_payload(self, payload: Dict[str, object]) -> Job:
        """Validate, admit, and enqueue one raw submission.

        Raises :class:`~repro.service.schema.SchemaError` on a
        malformed payload and :class:`AdmissionError` when the service
        is saturated or draining — nothing invalid or over-limit ever
        reaches the queue.
        """
        request = parse_sweep_request(payload)
        return self.submit(request)

    def submit(self, request: SweepRequest) -> Job:
        self._admit(request)
        job = self.queue.submit(request)
        self._log(
            "job-submitted",
            id=job.id,
            priority=job.priority,
            points=job.total_points,
            trace_id=job.trace_id,
        )
        if self._wake is not None:
            self._wake.set()
        return job

    def retry_after_hint(self) -> float:
        """Seconds until capacity likely frees up, from the live backlog."""
        avg = (self.sim_seconds / self.simulated) if self.simulated else 1.0
        backlog = self.queue.backlog_points()
        estimate = backlog * max(avg, 0.05) / max(1, self.config.workers)
        return round(min(60.0, max(0.5, estimate)), 2)

    def _reject(self, reason: str, message: str) -> None:
        self.rejected[reason] = self.rejected.get(reason, 0) + 1
        hint = self.retry_after_hint()
        self._log("job-rejected", reason=reason, retry_after=hint)
        raise AdmissionError(reason, message, retry_after=hint)

    def _admit(self, request: SweepRequest) -> None:
        """Backpressure: refuse work the service could only queue unboundedly."""
        cfg = self.config
        if self._draining or self._stopping:
            self._reject(
                "draining",
                "service is draining for shutdown; resubmit to the restarted "
                "instance",
            )
        queued = self.queue.pending()
        if cfg.max_queued_jobs and queued >= cfg.max_queued_jobs:
            self._reject(
                "queue-full",
                f"{queued} job(s) already queued (limit {cfg.max_queued_jobs})",
            )
        new_points = len(request.benchmarks) * len(request.configs)
        backlog = self.queue.backlog_points()
        if cfg.max_queued_points and backlog + new_points > cfg.max_queued_points:
            self._reject(
                "backlog-full",
                f"sweep adds {new_points} point(s) to a backlog of {backlog} "
                f"(limit {cfg.max_queued_points})",
            )
        if cfg.max_inflight_bytes:
            payload_bytes = len(
                json.dumps(request.to_dict(), sort_keys=True, separators=(",", ":"))
            )
            held = self.queue.inflight_bytes()
            if held + payload_bytes > cfg.max_inflight_bytes:
                self._reject(
                    "bytes-full",
                    f"request of {payload_bytes} bytes exceeds the in-flight "
                    f"byte budget ({held} of {cfg.max_inflight_bytes} held)",
                )

    # -- dispatch ----------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        assert self._wake is not None
        while not self._stopping:
            job = None if self._draining else self.queue.pop()
            if job is None:
                if self._draining:
                    return  # drain: finish held jobs, start nothing new
                self._wake.clear()
                await self._wake.wait()
                continue
            self._wake.set()  # more jobs may be queued; keep siblings awake
            if job.submitted_monotonic:
                self._m_queue_wait.observe(
                    max(0.0, time.monotonic() - job.submitted_monotonic)
                )
            await self._run_job(job)

    async def _run_job(self, job: Job) -> None:
        tasks = [
            asyncio.create_task(self._resolve_point(job, point, key))
            for point, key in zip(job.points, job.keys)
        ]
        self._job_tasks[job.id] = tasks
        try:
            results = await asyncio.gather(*tasks, return_exceptions=True)
        except asyncio.CancelledError:
            # the dispatcher itself was cancelled (hard stop or drain
            # deadline): leave the job non-terminal so replay or the
            # drain path re-queues it.
            for task in tasks:
                task.cancel()
            raise
        finally:
            self._job_tasks.pop(job.id, None)
        if job.state == JobState.CANCELLED:
            # cooperative DELETE mid-run: the queue already journaled
            # the terminal transition; just wake the watchers.
            self._log(
                "job-cancelled", id=job.id, was_running=True, trace_id=job.trace_id
            )
            async with self._progress:
                self._progress.notify_all()
            self.queue.maybe_compact(self.config.journal_max_bytes)
            return
        errors = [
            r for r in results
            if isinstance(r, BaseException)
            and not isinstance(r, asyncio.CancelledError)
        ]
        async with self._progress:
            if errors:
                first = errors[0]
                if isinstance(first, PointComputeError):
                    message = str(first)
                else:
                    message = f"{type(first).__name__}: {first}"
                self.queue.fail(job, message, job.failures)
                self._log(
                    "job-failed", id=job.id, message=message, trace_id=job.trace_id
                )
            else:
                self.queue.complete(job)
                self._log("job-completed", id=job.id, trace_id=job.trace_id)
            self._progress.notify_all()
        self.queue.maybe_compact(self.config.journal_max_bytes)

    async def cancel_job(self, job_id: str) -> Optional[bool]:
        """Cancel a queued *or running* job.

        Returns True when the job was cancelled, False when it is
        already terminal, and None when the id is unknown.  Cancelling
        a running job cancels its outstanding point tasks cooperatively:
        points that already completed stay in the store (consistent and
        reusable), the in-flight leader is interrupted, and follower
        jobs sharing a flight elect a new leader instead of failing.
        """
        job = self.queue.jobs.get(job_id)
        if job is None:
            return None
        if job.state in JobState.TERMINAL:
            return False
        if job.state == JobState.QUEUED:
            self.queue.cancel(job_id)
            self._log(
                "job-cancelled", id=job_id, was_running=False, trace_id=job.trace_id
            )
        else:
            self.queue.cancel_running(job)
            for task in self._job_tasks.get(job_id, []):
                task.cancel()
        if self._progress is not None:
            async with self._progress:
                self._progress.notify_all()
        return True

    async def _resolve_point(self, job: Job, point: SimPoint, key: str) -> None:
        payload = self.store.get(key)
        if payload is not None:
            self._log(
                "point-cache-hit", label=point.label(), key=key, id=job.id,
                trace_id=job.trace_id,
            )
            await self._mark_done(job, key)
            return
        while True:
            if self.flight.is_inflight(key):
                self._log(
                    "point-deduped", label=point.label(), key=key, id=job.id,
                    trace_id=job.trace_id,
                )
            try:
                await self.flight.run(key, lambda: self._compute(job, point, key))
            except FlightCancelled:
                # the leader's *job* was cancelled, not this one: take
                # over with a fresh flight (or the store, if the leader
                # published before the cancel landed).
                if self.store.get(key) is None:
                    continue
            except PointComputeError as exc:
                # the leader's _compute already appended its records to
                # its own job; follower jobs copy the flight's trail.
                if not any(f.get("key") == key for f in job.failures):
                    job.failures.extend(r.to_dict() for r in exc.records)
                raise
            break
        await self._mark_done(job, key)

    async def _mark_done(self, job: Job, key: str) -> None:
        async with self._progress:
            self.queue.point_completed(job, key)
            self._progress.notify_all()

    # -- the leader path ---------------------------------------------------

    def _breaker_check(self, job: Job, point: SimPoint, key: str) -> None:
        """Fast-fail a key whose breaker is open; half-open passes through."""
        state = self._breaker.get(key)
        if state is None or not state.open_until:
            return
        remaining = state.open_until - time.monotonic()
        if remaining <= 0:
            return  # half-open: let one probe attempt through
        self.breaker_fast_fails += 1
        label = point.label()
        record = FailureRecord(
            label=label,
            key=key,
            kind="timeout",
            attempt=0,
            message=(
                f"circuit breaker open after {state.consecutive} consecutive "
                f"timeouts; fast-failing for another {remaining:.2f}s"
            ),
            fatal=True,
        )
        job.failures.append(record.to_dict())
        self._log(
            "point-failed", label=label, key=key, attempt=0,
            kind="timeout", message=record.message, breaker="open",
            trace_id=job.trace_id,
        )
        raise PointComputeError(point, key, [record])

    def _note_timeout(self, key: str) -> bool:
        """Record one watchdog expiry; returns True if the breaker is open."""
        self.timeouts += 1
        state = self._breaker.setdefault(key, _BreakerState())
        state.consecutive += 1
        if state.consecutive >= self.config.breaker_threshold:
            state.open_until = time.monotonic() + self.config.breaker_cooldown
            if not state.tripped:
                state.tripped = True
                self.breaker_trips += 1
                self._log(
                    "breaker-tripped", key=key,
                    consecutive=state.consecutive,
                    cooldown=self.config.breaker_cooldown,
                )
            return True
        return False

    def _note_success(self, key: str) -> None:
        state = self._breaker.pop(key, None)
        if state is not None and state.tripped:
            self.breaker_recoveries += 1
            self._log("breaker-recovered", key=key)

    async def _compute(self, job: Job, point: SimPoint, key: str) -> None:
        """Leader path: simulate with watchdog + bounded retries, then publish."""
        assert self._executor is not None
        loop = asyncio.get_running_loop()
        records: List[FailureRecord] = []
        attempt = 0
        label = point.label()
        timeout = self.config.point_timeout
        trace_id = job.trace_id
        self._breaker_check(job, point, key)
        while True:
            self._log(
                "point-started", label=label, key=key, attempt=attempt,
                trace_id=trace_id,
            )
            # stamp the attempt: a watchdog expiry invalidates the stamp,
            # fencing the orphaned thread — its late result is dropped at
            # the futures layer (nothing awaits an abandoned future) and
            # could never pass this stamp check anyway.
            stamp = self._stamps[key] = self._stamps.get(key, 0) + 1
            try:
                future = loop.run_in_executor(
                    self._executor, execute_point, point, attempt
                )
                if timeout is not None:
                    stats_dict, wall = await asyncio.wait_for(future, timeout)
                else:
                    stats_dict, wall = await future
            except (asyncio.CancelledError, KeyboardInterrupt):
                raise
            except BaseException as exc:
                breaker_open = False
                if isinstance(exc, asyncio.TimeoutError):
                    kind = "timeout"
                    self._stamps[key] = stamp + 1  # fence the orphan
                    breaker_open = self._note_timeout(key)
                    message = (
                        f"TimeoutError: point exceeded the {timeout}s "
                        f"watchdog (attempt {attempt})"
                    )
                else:
                    if isinstance(exc, SanitizerError):
                        kind = "sanitizer"
                    elif isinstance(exc, MemoryError):
                        kind = "oom"
                    else:
                        kind = "crash"
                    message = f"{type(exc).__name__}: {exc}"
                # sanitizer violations are deterministic: retrying one
                # can only reproduce it (the runner's policy).  An open
                # breaker makes further retries pointless too.
                fatal = (
                    attempt >= self.config.max_retries
                    or kind == "sanitizer"
                    or breaker_open
                )
                record = FailureRecord(
                    label=label,
                    key=key,
                    kind=kind,
                    attempt=attempt,
                    message=message,
                    fatal=fatal,
                )
                records.append(record)
                job.failures.append(record.to_dict())
                if fatal:
                    self._log(
                        "point-failed", label=label, key=key, attempt=attempt,
                        kind=kind, message=record.message, trace_id=trace_id,
                    )
                    raise PointComputeError(point, key, records) from exc
                attempt += 1
                self._log(
                    "point-retried", label=label, key=key, attempt=attempt,
                    kind=kind, message=record.message, trace_id=trace_id,
                )
                await asyncio.sleep(
                    backoff_delay(key, attempt, self.config.retry_backoff)
                )
                continue
            break
        if self._stamps.get(key) != stamp:
            # defensive fence: a stale attempt must never publish.  The
            # awaited path always carries the current stamp, so reaching
            # here means bookkeeping broke — drop the result.
            _log.warning(f"[service] discarding stale result for {label}")
            return
        self._note_success(key)
        self.simulated += 1
        self.sim_seconds += wall
        self._m_point_seconds.observe(wall)
        self.store.put(
            key,
            stats_dict,
            {
                "benchmark": point.benchmark,
                "config_digest": point.config.digest(),
                "memory_refs": point.memory_refs,
                "seed": point.seed,
                "result_version": RESULT_VERSION,
                "repro_version": __version__,
                "wall_seconds": wall,
            },
        )
        self._log(
            "point-completed", label=label, key=key, attempt=attempt,
            duration=round(wall, 6), trace_id=trace_id,
        )

    # -- observation -------------------------------------------------------

    def job(self, job_id: str) -> Optional[Job]:
        return self.queue.jobs.get(job_id)

    def job_status(self, job_id: str) -> Optional[Dict[str, object]]:
        """Poll response: summary plus per-point results when available."""
        job = self.queue.jobs.get(job_id)
        if job is None:
            return None
        status = job.summary()
        if job.state == JobState.COMPLETED:
            status["results"] = self.results(job)
        return status

    def results(self, job: Job) -> List[Dict[str, object]]:
        """Per-point results in the sweep's stable point order."""
        out = []
        for point, key in zip(job.points, job.keys):
            stats = self.store.get(key)
            out.append(
                {
                    "benchmark": point.benchmark,
                    "config_digest": point.config.digest(),
                    "memory_refs": point.memory_refs,
                    "seed": point.seed,
                    "key": key,
                    "stats": stats,
                }
            )
        return out

    async def watch(self, job_id: str) -> AsyncIterator[Dict[str, object]]:
        """Progress events for one job until it reaches a terminal state.

        Yields ``{"type": "progress", ...}`` after every newly completed
        point and a final ``{"type": "job", "state": ...}``; starts with
        a snapshot so late subscribers still see current progress.
        Cancellation (queued or running) is a terminal transition like
        any other: every transition notifies the shared condition, so a
        watcher of a cancelled job terminates with a ``cancelled`` event
        instead of wedging.

        Raises :class:`ValueError` for an unknown job id.
        """
        assert self._progress is not None
        job = self.queue.jobs.get(job_id)
        if job is None:
            raise ValueError(f"no such job: {job_id!r}")
        seen = -1
        while True:
            done = job.completed_points
            if done != seen:
                seen = done
                yield {
                    "type": "progress",
                    "id": job.id,
                    "completed": done,
                    "total": job.total_points,
                }
            if job.state in JobState.TERMINAL:
                yield {"type": "job", "id": job.id, "state": job.state}
                return
            async with self._progress:
                # re-check under the lock: every transition notifies
                # while holding it, so this cannot miss a wakeup.
                if job.completed_points == seen and job.state not in JobState.TERMINAL:
                    await self._progress.wait()

    async def wait_for(self, job_id: str, timeout: Optional[float] = None) -> Job:
        """Block until ``job_id`` is terminal; returns the job.

        Raises :class:`ValueError` for an unknown job id and
        :class:`asyncio.TimeoutError` when the deadline expires first.
        """
        if job_id not in self.queue.jobs:
            raise ValueError(f"no such job: {job_id!r}")

        async def _drain_events() -> Job:
            async for _ in self.watch(job_id):
                pass
            return self.queue.jobs[job_id]

        return await asyncio.wait_for(_drain_events(), timeout)

    def stats(self) -> Dict[str, object]:
        """Service-level counters for ``GET /v1/stats``."""
        jobs = self.queue.jobs.values()
        by_state: Dict[str, int] = {}
        for job in jobs:
            by_state[job.state] = by_state.get(job.state, 0) + 1
        now = time.monotonic()
        open_keys = sum(
            1 for state in self._breaker.values() if state.open_until > now
        )
        return {
            "version": __version__,
            "started_at": datetime.datetime.fromtimestamp(
                self.started_at, datetime.timezone.utc
            ).isoformat(timespec="seconds"),
            "uptime_seconds": self.uptime_seconds(),
            "jobs": by_state,
            "points_simulated": self.simulated,
            "sim_seconds": round(self.sim_seconds, 3),
            "latency": {
                "job_queue_wait_seconds": self._m_queue_wait.summary(),
                "point_seconds": self._m_point_seconds.summary(),
            },
            "store": self.store.summary(),
            "single_flight": self.flight.summary(),
            "workers": self.config.workers,
            "job_concurrency": self.config.job_concurrency,
            "draining": self._draining,
            "admission": {
                "max_queued_jobs": self.config.max_queued_jobs,
                "max_queued_points": self.config.max_queued_points,
                "max_inflight_bytes": self.config.max_inflight_bytes,
                "queued_jobs": self.queue.pending(),
                "backlog_points": self.queue.backlog_points(),
                "inflight_bytes": self.queue.inflight_bytes(),
                "rejected": dict(self.rejected),
                "retry_after": self.retry_after_hint(),
            },
            "watchdog": {
                "point_timeout": self.config.point_timeout,
                "timeouts": self.timeouts,
            },
            "breaker": {
                "threshold": self.config.breaker_threshold,
                "cooldown": self.config.breaker_cooldown,
                "trips": self.breaker_trips,
                "fast_fails": self.breaker_fast_fails,
                "recoveries": self.breaker_recoveries,
                "open_keys": open_keys,
            },
            "journal": {
                "path": str(self.queue.journal_path),
                "bytes": self.queue.journal_bytes(),
                "max_bytes": self.config.journal_max_bytes,
                "compactions": self.queue.compactions,
                "write_errors": self.queue.journal_write_errors,
            },
        }

    def _log(self, event: str, **fields: object) -> None:
        if self.run_log is not None:
            self.run_log.event(event, **fields)
