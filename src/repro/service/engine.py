"""The asyncio execution engine behind the simulation service.

:class:`SimulationService` ties the contract, the queue, and the shared
store together:

* accepted sweeps (already validated by :mod:`repro.service.schema`)
  enter the persistent :class:`~repro.service.queue.JobQueue`;
* ``job_concurrency`` dispatcher tasks drain it in priority order;
* each job's points resolve concurrently through the
  :class:`~repro.service.dedup.SharedResultStore` and, on a true miss,
  :class:`~repro.service.dedup.SingleFlight` — the winning flight runs
  :func:`repro.runner.worker.execute_point` in a thread-pool executor
  (the same function behind ``Runner.run_points``, so service results
  are field-for-field identical to batch results);
* failures follow the runner's policy: bounded retries with
  deterministic keyed backoff (:func:`repro.runner.backoff_delay`),
  :class:`~repro.runner.FailureRecord` entries for every attempt, and
  sanitizer-style immediate fatality is preserved for deterministic
  errors.

Telemetry goes to an optional run log with the runner's own event
vocabulary (``point-started`` / ``point-completed`` / ``point-retried``
/ ``point-failed``) plus the service-level events ``job-submitted``,
``job-completed``, ``point-cache-hit`` and ``point-deduped`` — so
"this point was computed exactly once" is directly checkable by
counting ``point-completed`` records per key.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import AsyncIterator, Dict, List, Optional

from repro import __version__
from repro.obs.log import JsonlSink, get_logger
from repro.runner import RESULT_VERSION, FailureRecord, SimPoint
from repro.runner.runner import backoff_delay
from repro.runner.worker import execute_point
from repro.sanitize.errors import SanitizerError
from repro.service.dedup import SharedResultStore, SingleFlight
from repro.service.queue import Job, JobQueue, JobState
from repro.service.schema import SweepRequest, parse_sweep_request

__all__ = ["PointComputeError", "ServiceConfig", "SimulationService"]

_log = get_logger("repro.service")


class PointComputeError(RuntimeError):
    """A point exhausted its retry budget (or hit a deterministic error).

    Carries the failure records of every attempt the flight made;
    follower jobs sharing the flight receive the same exception.
    """

    def __init__(self, point: SimPoint, key: str, records: List[FailureRecord]) -> None:
        self.point = point
        self.key = key
        self.records = records
        last = records[-1] if records else None
        detail = f"{last.kind}: {last.message}" if last else "unknown failure"
        super().__init__(f"point {point.label()} failed permanently — {detail}")


@dataclass
class ServiceConfig:
    """Knobs for one service instance."""

    #: JSONL journal backing the persistent job queue.
    journal_path: str
    #: shared on-disk result store; None = memo-only (no persistence).
    cache_dir: Optional[str] = None
    #: simulation threads (one point simulates per thread at a time).
    workers: int = 2
    #: jobs dispatched concurrently; defaults to ``workers``.
    job_concurrency: Optional[int] = None
    #: failed attempts retried per point (the runner's default).
    max_retries: int = 2
    #: base seconds for the deterministic keyed backoff schedule.
    retry_backoff: float = 0.05
    #: optional JSONL telemetry sink (runner-compatible event names).
    run_log: Optional[JsonlSink] = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.job_concurrency is None:
            self.job_concurrency = self.workers
        if self.job_concurrency < 1:
            raise ValueError(
                f"job_concurrency must be >= 1, got {self.job_concurrency}"
            )
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")


class SimulationService:
    """Long-lived engine: submit → queue → dedup → simulate → results."""

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.queue = JobQueue(config.journal_path)
        self.store = SharedResultStore(config.cache_dir)
        self.flight = SingleFlight()
        self.run_log = config.run_log
        self.simulated = 0
        self.sim_seconds = 0.0
        self._executor: Optional[ThreadPoolExecutor] = None
        self._dispatchers: List["asyncio.Task"] = []
        self._wake: Optional[asyncio.Event] = None
        self._progress: Optional[asyncio.Condition] = None
        self._stopping = False

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Spawn the dispatchers; resumes any journal-recovered jobs."""
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.workers, thread_name_prefix="repro-sim"
        )
        self._wake = asyncio.Event()
        self._progress = asyncio.Condition()
        self._stopping = False
        self._dispatchers = [
            asyncio.create_task(self._dispatch_loop(), name=f"dispatcher-{i}")
            for i in range(self.config.job_concurrency)
        ]
        recovered = self.queue.recovered_job_ids
        if recovered:
            _log.info(
                f"[service] recovered {len(recovered)} unfinished job(s) "
                f"from {self.queue.journal_path}"
            )
            self._wake.set()

    async def stop(self) -> None:
        """Drain nothing: stop dispatchers, release the executor."""
        self._stopping = True
        for task in self._dispatchers:
            task.cancel()
        for task in self._dispatchers:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._dispatchers = []
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None
        self.queue.close()
        if self.run_log is not None:
            self.run_log.close()

    # -- submission --------------------------------------------------------

    def submit_payload(self, payload: Dict[str, object]) -> Job:
        """Validate and enqueue one raw submission.

        Raises :class:`~repro.service.schema.SchemaError` on a
        malformed payload — nothing invalid ever reaches the queue.
        """
        request = parse_sweep_request(payload)
        return self.submit(request)

    def submit(self, request: SweepRequest) -> Job:
        job = self.queue.submit(request)
        self._log(
            "job-submitted",
            id=job.id,
            priority=job.priority,
            points=job.total_points,
        )
        if self._wake is not None:
            self._wake.set()
        return job

    # -- dispatch ----------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        assert self._wake is not None
        while not self._stopping:
            job = self.queue.pop()
            if job is None:
                self._wake.clear()
                await self._wake.wait()
                continue
            self._wake.set()  # more jobs may be queued; keep siblings awake
            await self._run_job(job)

    async def _run_job(self, job: Job) -> None:
        results = await asyncio.gather(
            *(
                self._resolve_point(job, point, key)
                for point, key in zip(job.points, job.keys)
            ),
            return_exceptions=True,
        )
        errors = [r for r in results if isinstance(r, BaseException)]
        async with self._progress:
            if errors:
                first = errors[0]
                if isinstance(first, PointComputeError):
                    message = str(first)
                else:
                    message = f"{type(first).__name__}: {first}"
                self.queue.fail(job, message, job.failures)
                self._log("job-failed", id=job.id, message=message)
            else:
                self.queue.complete(job)
                self._log("job-completed", id=job.id)
            self._progress.notify_all()

    async def _resolve_point(self, job: Job, point: SimPoint, key: str) -> None:
        payload = self.store.get(key)
        if payload is not None:
            self._log("point-cache-hit", label=point.label(), key=key, id=job.id)
            await self._mark_done(job, key)
            return
        if self.flight.is_inflight(key):
            self._log("point-deduped", label=point.label(), key=key, id=job.id)
        try:
            await self.flight.run(key, lambda: self._compute(job, point, key))
        except PointComputeError as exc:
            # the leader's _compute already appended its records to its
            # own job; follower jobs copy the shared flight's trail.
            if not any(f.get("key") == key for f in job.failures):
                job.failures.extend(r.to_dict() for r in exc.records)
            raise
        await self._mark_done(job, key)

    async def _mark_done(self, job: Job, key: str) -> None:
        async with self._progress:
            self.queue.point_completed(job, key)
            self._progress.notify_all()

    async def _compute(self, job: Job, point: SimPoint, key: str) -> None:
        """Leader path: simulate with bounded retries, then publish."""
        assert self._executor is not None
        loop = asyncio.get_running_loop()
        records: List[FailureRecord] = []
        attempt = 0
        label = point.label()
        while True:
            self._log("point-started", label=label, key=key, attempt=attempt)
            try:
                stats_dict, wall = await loop.run_in_executor(
                    self._executor, execute_point, point, attempt
                )
            except (asyncio.CancelledError, KeyboardInterrupt):
                raise
            except BaseException as exc:
                if isinstance(exc, SanitizerError):
                    kind = "sanitizer"
                elif isinstance(exc, MemoryError):
                    kind = "oom"
                else:
                    kind = "crash"
                # sanitizer violations are deterministic: retrying one
                # can only reproduce it (the runner's policy).
                fatal = attempt >= self.config.max_retries or kind == "sanitizer"
                record = FailureRecord(
                    label=label,
                    key=key,
                    kind=kind,
                    attempt=attempt,
                    message=f"{type(exc).__name__}: {exc}",
                    fatal=fatal,
                )
                records.append(record)
                job.failures.append(record.to_dict())
                if fatal:
                    self._log(
                        "point-failed", label=label, key=key, attempt=attempt,
                        kind=kind, message=record.message,
                    )
                    raise PointComputeError(point, key, records) from exc
                attempt += 1
                self._log(
                    "point-retried", label=label, key=key, attempt=attempt,
                    kind=kind, message=record.message,
                )
                await asyncio.sleep(
                    backoff_delay(key, attempt, self.config.retry_backoff)
                )
                continue
            break
        self.simulated += 1
        self.sim_seconds += wall
        self.store.put(
            key,
            stats_dict,
            {
                "benchmark": point.benchmark,
                "config_digest": point.config.digest(),
                "memory_refs": point.memory_refs,
                "seed": point.seed,
                "result_version": RESULT_VERSION,
                "repro_version": __version__,
                "wall_seconds": wall,
            },
        )
        self._log(
            "point-completed", label=label, key=key, attempt=attempt,
            duration=round(wall, 6),
        )

    # -- observation -------------------------------------------------------

    def job(self, job_id: str) -> Optional[Job]:
        return self.queue.jobs.get(job_id)

    def job_status(self, job_id: str) -> Optional[Dict[str, object]]:
        """Poll response: summary plus per-point results when available."""
        job = self.queue.jobs.get(job_id)
        if job is None:
            return None
        status = job.summary()
        if job.state == JobState.COMPLETED:
            status["results"] = self.results(job)
        return status

    def results(self, job: Job) -> List[Dict[str, object]]:
        """Per-point results in the sweep's stable point order."""
        out = []
        for point, key in zip(job.points, job.keys):
            stats = self.store.get(key)
            out.append(
                {
                    "benchmark": point.benchmark,
                    "config_digest": point.config.digest(),
                    "memory_refs": point.memory_refs,
                    "seed": point.seed,
                    "key": key,
                    "stats": stats,
                }
            )
        return out

    async def watch(self, job_id: str) -> AsyncIterator[Dict[str, object]]:
        """Progress events for one job until it reaches a terminal state.

        Yields ``{"type": "progress", ...}`` after every newly completed
        point and a final ``{"type": "job", "state": ...}``; starts with
        a snapshot so late subscribers still see current progress.
        """
        assert self._progress is not None
        job = self.queue.jobs.get(job_id)
        if job is None:
            return
        seen = -1
        while True:
            done = job.completed_points
            if done != seen:
                seen = done
                yield {
                    "type": "progress",
                    "id": job.id,
                    "completed": done,
                    "total": job.total_points,
                }
            if job.state in JobState.TERMINAL:
                yield {"type": "job", "id": job.id, "state": job.state}
                return
            async with self._progress:
                # re-check under the lock: every transition notifies
                # while holding it, so this cannot miss a wakeup.
                if job.completed_points == seen and job.state not in JobState.TERMINAL:
                    await self._progress.wait()

    async def wait_for(self, job_id: str, timeout: Optional[float] = None) -> Job:
        """Block until ``job_id`` is terminal; returns the job."""

        async def _drain() -> Job:
            async for _ in self.watch(job_id):
                pass
            return self.queue.jobs[job_id]

        return await asyncio.wait_for(_drain(), timeout)

    def stats(self) -> Dict[str, object]:
        """Service-level counters for ``GET /v1/stats``."""
        jobs = self.queue.jobs.values()
        by_state: Dict[str, int] = {}
        for job in jobs:
            by_state[job.state] = by_state.get(job.state, 0) + 1
        return {
            "version": __version__,
            "jobs": by_state,
            "points_simulated": self.simulated,
            "sim_seconds": round(self.sim_seconds, 3),
            "store": self.store.summary(),
            "single_flight": self.flight.summary(),
            "workers": self.config.workers,
            "job_concurrency": self.config.job_concurrency,
        }

    def _log(self, event: str, **fields: object) -> None:
        if self.run_log is not None:
            self.run_log.event(event, **fields)
