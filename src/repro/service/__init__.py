"""Simulation-as-a-service: an async job API over :mod:`repro.runner`.

The service turns the batch reproduction into a traffic-serving system:

* :mod:`repro.service.schema` — the validation-first request contract
  (:class:`SweepRequest`): malformed sweeps are rejected upfront with
  actionable, field-addressed errors, and every accepted point is keyed
  by ``SystemConfig.digest()`` exactly like the runner's result cache;
* :mod:`repro.service.queue` — a persistent priority job queue whose
  JSONL journal replays after a restart, so no accepted job is ever
  lost mid-batch;
* :mod:`repro.service.dedup` — the content-addressed result store
  shared across tenants, with single-flight deduplication so identical
  points are computed exactly once no matter how many concurrent
  submissions want them;
* :mod:`repro.service.engine` — the asyncio execution engine tying the
  three together (priority dispatch, bounded workers, bounded retries
  reusing the runner's :class:`~repro.runner.FailureRecord` taxonomy),
  hardened for production traffic: admission control with ``429`` +
  ``Retry-After`` backpressure, per-point watchdog timeouts with a
  circuit breaker on repeated hangs, cooperative cancellation of
  running jobs, graceful drain on shutdown, and journal compaction;
* :mod:`repro.service.server` / :mod:`repro.service.client` — a
  stdlib-only asyncio HTTP API (submit sweep → job id → poll / stream)
  and the matching blocking client;
* :mod:`repro.service.cli` — the ``repro-serve`` entry point (serve,
  submit, status, wait, smoke).

Statistics served by the service are field-for-field identical to what
:meth:`repro.runner.Runner.run_points` returns for the same points —
both funnel through :func:`repro.runner.worker.execute_point` and the
same ``SimStats`` round trip.
"""

from repro.service.dedup import FlightCancelled, SharedResultStore, SingleFlight
from repro.service.engine import (
    AdmissionError,
    PointComputeError,
    ServiceConfig,
    SimulationService,
)
from repro.service.queue import Job, JobQueue, JobState
from repro.service.schema import SchemaError, SweepRequest, parse_sweep_request

__all__ = [
    "AdmissionError",
    "FlightCancelled",
    "Job",
    "JobQueue",
    "JobState",
    "PointComputeError",
    "SchemaError",
    "ServiceConfig",
    "SharedResultStore",
    "SimulationService",
    "SingleFlight",
    "SweepRequest",
    "parse_sweep_request",
]
