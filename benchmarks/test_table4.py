"""Table 4 benchmark: prefetch scheme comparison."""

from conftest import run_once

from repro.experiments import table4


def test_table4(benchmark, profile):
    result = run_once(benchmark, table4.run, profile)
    print("\n" + table4.render(result))
    # Paper shape: unscheduled prefetching reaches the lowest miss rate
    # but catastrophic latency; scheduling keeps most of the miss-rate
    # win at almost no latency cost; LIFO edges out FIFO.
    assert result.miss_rate["fifo_prefetch"] < result.miss_rate["base"]
    assert result.miss_rate["scheduled_lifo"] < result.miss_rate["base"]
    assert result.miss_latency["fifo_prefetch"] > 3 * result.miss_latency["base"]
    assert result.miss_latency["scheduled_lifo"] < 1.5 * result.miss_latency["base"]
    assert result.normalized_ipc["fifo_prefetch"] < 1.0
    assert result.normalized_ipc["scheduled_lifo"] >= result.normalized_ipc["base"] * 0.999
