"""Section 4.2 benchmark: prefetch region size sweep."""

from conftest import run_once

from repro.experiments import region_size
from repro.experiments.common import Profile
from repro.workloads import FIGURE5_WINNERS


def test_region_size(benchmark, profile):
    # The effect is concentrated in the prefetch-friendly benchmarks.
    names = tuple(b for b in profile.benchmarks if b in FIGURE5_WINNERS) or ("swim", "gap")
    prof = Profile(profile.name + "-rs", memory_refs=profile.memory_refs, benchmarks=names)
    result = run_once(benchmark, region_size.run, prof, (512, 2048, 4096, 8192))
    print("\n" + region_size.render(result))
    # Paper: 4KB best overall; below 2KB the improvement drops off;
    # beyond 4KB the impact is negligible.
    assert result.gain(4096) > result.gain(512) - 0.02
    assert abs(result.gain(8192) - result.gain(4096)) < 0.15
    assert result.gain(4096) > 0.0
