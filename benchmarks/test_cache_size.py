"""Section 4.5 benchmark: L2 capacity sweep with/without prefetching."""

from conftest import run_once

from repro.experiments import cache_size


def test_cache_size(benchmark, profile):
    result = run_once(benchmark, cache_size.run, profile, (1, 2, 4))
    print("\n" + cache_size.render(result))
    # Paper: larger caches help the baseline monotonically-ish, and the
    # prefetching gain remains positive and stable across capacities.
    # Short traces limit how much capacity beyond the touched working
    # sets can matter, so the bounds are directional.
    assert result.baseline_speedup(2) > -0.15
    assert result.baseline_speedup(4) >= result.baseline_speedup(2) - 0.10
    for size in (1, 2, 4):
        assert result.prefetch_gain(size) > -0.15
