"""Shared fixtures for the reproduction benchmarks.

Each benchmark regenerates one table or figure of the paper and
asserts its qualitative shape.  The simulation effort is controlled by
``REPRO_PROFILE`` (default ``tiny`` here so the whole bench suite runs
in minutes); use ``quick`` or ``full`` to regenerate EXPERIMENTS.md
numbers.
"""

import pytest

from repro.experiments.common import active_profile


@pytest.fixture(scope="session")
def profile():
    return active_profile(default="tiny")


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
