"""Section 4.6 benchmark: DRAM latency sensitivity."""

from conftest import run_once

from repro.experiments import latency_sensitivity


def test_latency_sensitivity(benchmark, profile):
    result = run_once(benchmark, latency_sensitivity.run, profile)
    print("\n" + latency_sensitivity.render(result))
    # Paper: baseline IPC tracks the DRAM speed grade, but the
    # prefetching gain is nearly insensitive to the speed ratio
    # (15.6% vs 14.2% across the extremes).
    labels = result.labels
    assert result.mean_ipc[(labels[0], False)] <= result.mean_ipc[(labels[2], False)] * 1.05
    gains = [result.prefetch_gain(label) for label in labels]
    assert all(g > -0.05 for g in gains)
    assert result.gain_spread < 0.25
