"""Figure 5 benchmark: tuned scheduled region prefetching."""

from conftest import run_once

from repro.experiments import figure5
from repro.experiments.common import Profile


def test_figure5(benchmark, profile):
    # Figure 5 is defined over the ten winners; keep the profile's
    # effort level but force the winner set.
    prof = Profile(profile.name + "-f5", memory_refs=profile.memory_refs)
    result = run_once(benchmark, figure5.run, prof)
    print("\n" + figure5.render(result))
    # Paper shapes: XOR helps (+33%), prefetching adds more (+43%),
    # the 8ch/256B+PF system dominates (+118% over 4ch base) and most
    # benchmarks prefer 4ch+PF to 8ch without PF.
    assert result.prefetch_speedup > 0.05
    assert result.best_speedup_over_base > result.xor_speedup
    assert result.mean("8ch_xor_pf") >= result.mean("4ch_xor_pf")
    assert result.pf4_beats_8ch_count >= len(result.benchmarks) // 3
