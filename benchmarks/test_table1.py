"""Table 1 benchmark: pollution vs. performance points."""

from conftest import run_once

from repro.experiments import table1


def test_table1(benchmark, profile):
    result = run_once(benchmark, table1.run, profile)
    print("\n" + table1.render(result))
    # Paper: pollution points sit far above the performance points
    # (2KB mean vs. a 128B suite performance point).
    assert result.mean_pollution_point > result.suite_performance_point
    assert result.suite_performance_point <= 512
    for row in result.rows:
        assert row.pollution_point >= row.performance_point or (
            row.miss_rate_by_block[row.performance_point]
            <= row.miss_rate_by_block[64] + 1e-9
        )
