"""Table 3 benchmark: prefetch insertion priority."""

from conftest import run_once

from repro.experiments import table3


def test_table3(benchmark, profile):
    result = run_once(benchmark, table3.run, profile)
    print("\n" + table3.render(result))
    if ("high", "mru") in result.accuracy:
        # Paper: insertion priority barely moves accuracy for the
        # high-accuracy class.
        spread = abs(
            result.accuracy[("high", "mru")] - result.accuracy[("high", "lru")]
        )
        assert spread < 0.25
    if ("low", "mru") in result.mean_ipc:
        # Paper: LRU insertion protects the low-accuracy class from
        # pollution (MRU costs it ~33%).
        assert result.speedup_vs_mru("low", "lru") >= -0.05
