"""Section 3.4 benchmark: base vs. XOR address mapping."""

from conftest import run_once

from repro.experiments import mapping


def test_mapping(benchmark, profile):
    result = run_once(benchmark, mapping.run, profile)
    print("\n" + mapping.render(result))
    # Paper: +16% mean speedup; row-hit rates rise for reads and
    # writebacks (51->72% and 28->55%).
    assert result.mean_speedup > 0.02
    assert result.mean_read_hit_xor > result.mean_read_hit_base
    assert result.mean_wb_hit_xor > result.mean_wb_hit_base
    # Several benchmarks see large individual gains (paper: 40-63%).
    assert any(r.speedup > 0.15 for r in result.rows)
