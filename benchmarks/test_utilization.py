"""Section 4.4 benchmark: channel utilization with/without prefetching."""

from conftest import run_once

from repro.experiments import utilization


def test_utilization(benchmark, profile):
    result = run_once(benchmark, utilization.run, profile)
    print("\n" + utilization.render(result))
    # Paper: command/data utilization rise 1.9x/2.5x with prefetching
    # (28->54% and 17->42%); accurate streamers rise the most.
    assert result.mean_cmd_pf > result.mean_cmd_base
    assert result.mean_data_pf > result.mean_data_base
    for row in result.rows:
        assert 0.0 <= row.cmd_pf <= 1.0
        assert 0.0 <= row.data_pf <= 1.0
