"""Table 2 benchmark: channel width vs. best block size."""

from conftest import run_once

from repro.experiments import table2

CHANNELS = (2, 4, 8, 32)
BLOCKS = (64, 256, 1024)


def test_table2(benchmark, profile):
    result = run_once(benchmark, table2.run, profile, CHANNELS, BLOCKS)
    print("\n" + table2.render(result))
    # Paper: the performance point moves to larger blocks as channels
    # widen; a 32-channel system prefers the largest blocks.
    assert result.best_block(32) >= result.best_block(2)
    # More bandwidth never hurts at the largest block size.
    assert result.mean_ipc[(32, 1024)] >= result.mean_ipc[(2, 1024)]
