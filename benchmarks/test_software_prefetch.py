"""Section 4.7 benchmark: software vs. region prefetching."""

from conftest import run_once

from repro.experiments import software_prefetch
from repro.experiments.common import Profile


def test_software_prefetch(benchmark, profile):
    prof = Profile(profile.name + "-sw", memory_refs=profile.memory_refs)
    result = run_once(
        benchmark, software_prefetch.run, prof, ("mgrid", "swim", "wupwise", "galgel")
    )
    print("\n" + software_prefetch.render(result))
    # Paper: software prefetching helps the streaming trio on the base
    # system (+10..39%)...
    helped = [result.row(b).sw_gain_alone for b in ("mgrid", "swim", "wupwise")]
    assert max(helped) > 0.03
    # ...but is subsumed by region prefetching (<= ~2% extra).
    for b in ("mgrid", "swim", "wupwise"):
        assert result.row(b).sw_gain_with_region < max(
            result.row(b).sw_gain_alone, 0.05
        )
