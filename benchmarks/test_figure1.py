"""Figure 1 benchmark: stall-time decomposition of the SPEC suite."""

from conftest import run_once

from repro.experiments import figure1


def test_figure1(benchmark, profile):
    result = run_once(benchmark, figure1.run, profile)
    print("\n" + figure1.render(result))
    # Paper: 57% of time in L2 misses, 12% in L1 misses, 31% compute.
    # (Small-subset profiles skew toward the stall-heavy benchmarks, so
    # the bound is generous; the quick/full profiles land near 70/5/25.)
    assert 0.3 < result.mean_l2_stall_fraction < 0.96
    assert result.mean_compute_fraction < 0.6
    # mcf-class benchmarks must sit at the stall-heavy end.
    by_name = {r.benchmark: r for r in result.rows}
    if "mcf" in by_name and "eon" in by_name:
        assert by_name["mcf"].l2_stall_fraction > by_name["eon"].l2_stall_fraction
